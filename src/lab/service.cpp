#include "lab/service.hpp"

#include <exception>

#include "lab/json.hpp"
#include "parallel/thread_pool.hpp"

namespace lab {

std::string set_cache_hit(std::string report_json, bool hit) {
    static const std::string tag = "\"cache\":{\"hit\":";
    const auto pos = report_json.find(tag);
    if (pos == std::string::npos) return report_json;
    const auto vstart = pos + tag.size();
    const bool cur = report_json.compare(vstart, 4, "true") == 0;
    report_json.replace(vstart, cur ? 4 : 5, hit ? "true" : "false");
    return report_json;
}

std::string mask_cache_hit(std::string report_json) {
    return set_cache_hit(std::move(report_json), false);
}

Service::Service(std::string store_dir) : store_(std::move(store_dir)) {}

Answer Service::answer(const ScenarioRequest& req) {
    Answer out;
    try {
        req.validate();
        out.key = req.store_key();
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        out.error = e.what();
        return out;
    }
    queries_.fetch_add(1, std::memory_order_relaxed);

    for (;;) {
        if (auto cached = store_.get(out.key)) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            out.cache_hit = true;
            out.report_json = set_cache_hit(std::move(*cached), true);
            return out;
        }
        // Singleflight: first thread in evaluates, the rest wait for its
        // store entry and take the hit path above.
        std::unique_lock<std::mutex> lock(flight_mu_);
        if (inflight_.count(out.key) != 0) {
            flight_cv_.wait(lock, [&] { return inflight_.count(out.key) == 0; });
            continue; // the winner's put() (or failure) happened; re-check
        }
        if (store_.contains(out.key)) continue; // won the race too late
        inflight_.insert(out.key);
        break;
    }

    try {
        const perf::RunReport rep = eval_.evaluate(req);
        store_.put(out.key, rep.to_canonical_json());
        misses_.fetch_add(1, std::memory_order_relaxed);
        out.cache_hit = false;
        out.report_json = *store_.get(out.key);
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        queries_.fetch_sub(1, std::memory_order_relaxed); // didn't serve it
        out.error = e.what();
    }
    {
        std::lock_guard<std::mutex> lock(flight_mu_);
        inflight_.erase(out.key);
    }
    flight_cv_.notify_all();
    return out;
}

Answer Service::answer_json(const std::string& request_json) {
    ScenarioRequest req;
    try {
        req = ScenarioRequest::parse(request_json);
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        Answer out;
        out.error = e.what();
        return out;
    }
    return answer(req);
}

std::vector<Answer> Service::answer_all(const std::vector<ScenarioRequest>& reqs) {
    std::vector<Answer> out(reqs.size());
    parallel::pool().parallel_for(reqs.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) out[i] = answer(reqs[i]);
    });
    return out;
}

Service::Stats Service::stats() const {
    Stats s;
    s.queries = queries_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    return s;
}

} // namespace lab
