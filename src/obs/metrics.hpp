#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

/// \file metrics.hpp
/// Process-wide metrics registry: named counters, gauges and power-of-two
/// histograms with deterministic (name-sorted) ordering, so snapshots can be
/// embedded in a RunReport and diffed across runs.  The registry absorbs the
/// op-counter and stage-stat style accounting that used to be scattered per
/// subsystem; `perf::report()` folds a snapshot into every RunReport.
namespace obs {

/// Power-of-two bucketed histogram: each sample lands in the bucket of its
/// binary exponent (frexp), so merging and serialising are exact and the
/// bucket set is deterministic for a deterministic sample stream.
struct Histogram {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::map<int, std::uint64_t> buckets; ///< binary exponent -> samples

    void observe(double v);
    [[nodiscard]] double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

class MetricsRegistry {
public:
    /// Adds `delta` to counter `name` (creates it at zero).
    void add(std::string_view name, double delta = 1.0);
    /// Sets gauge `name` to `value` (last write wins).
    void set(std::string_view name, double value);
    /// Records one sample into histogram `name`.
    void observe(std::string_view name, double value);

    struct Snapshot {
        std::map<std::string, double> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, Histogram> histograms;
    };
    [[nodiscard]] Snapshot snapshot() const;

    void reset();

private:
    mutable std::mutex mu_;
    Snapshot data_;
};

/// The process-global registry.
[[nodiscard]] MetricsRegistry& metrics();

} // namespace obs
