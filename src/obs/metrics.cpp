#include "obs/metrics.hpp"

#include <cmath>

namespace obs {

void Histogram::observe(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    int exp = 0;
    std::frexp(v, &exp);
    ++buckets[exp];
}

void MetricsRegistry::add(std::string_view name, double delta) {
    std::lock_guard<std::mutex> g(mu_);
    data_.counters[std::string(name)] += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
    std::lock_guard<std::mutex> g(mu_);
    data_.gauges[std::string(name)] = value;
}

void MetricsRegistry::observe(std::string_view name, double value) {
    std::lock_guard<std::mutex> g(mu_);
    data_.histograms[std::string(name)].observe(value);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return data_;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> g(mu_);
    data_ = Snapshot{};
}

MetricsRegistry& metrics() {
    static MetricsRegistry m;
    return m;
}

} // namespace obs
