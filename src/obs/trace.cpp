#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace obs {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_f64(std::vector<std::uint8_t>& out, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    append_u64(out, bits);
}

void json_escape(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void append_number(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

void Tracer::enable(TracerConfig cfg) {
    std::lock_guard<std::mutex> g(mu_);
    cfg_ = cfg;
    virtual_only_.store(cfg.virtual_only, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_release);
}

void Tracer::reset() {
    std::lock_guard<std::mutex> g(mu_);
    lanes_.clear();
    strings_.assign(1, std::string{});
    string_ids_.clear();
}

Lane* Tracer::lane(std::string_view name) {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& l : lanes_)
        if (l->name_ == name) return l.get();
    lanes_.push_back(std::unique_ptr<Lane>(new Lane(std::string(name), cfg_.lane_capacity)));
    return lanes_.back().get();
}

std::uint32_t Tracer::intern(std::string_view s) {
    if (s.empty()) return 0; // id 0 is reserved for ""
    std::lock_guard<std::mutex> g(mu_);
    const auto it = string_ids_.find(s);
    if (it != string_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    string_ids_.emplace(std::string(s), id);
    return id;
}

void Tracer::record(Lane* lane, TraceEvent ev) {
    if (!enabled()) return;
    if (virtual_only_.load(std::memory_order_relaxed) && !ev.virtual_time) return;
    std::lock_guard<std::mutex> g(lane->mu_);
    if (lane->events_.size() < lane->capacity_) {
        lane->events_.push_back(ev);
    } else {
        lane->events_[lane->head_] = ev;
        lane->head_ = (lane->head_ + 1) % lane->capacity_;
        ++lane->dropped_;
    }
}

Tracer::Snapshot Tracer::snapshot() const {
    Snapshot snap;
    std::vector<Lane*> lanes;
    {
        std::lock_guard<std::mutex> g(mu_);
        snap.strings = strings_;
        lanes.reserve(lanes_.size());
        for (const auto& l : lanes_) lanes.push_back(l.get());
    }
    std::sort(lanes.begin(), lanes.end(),
              [](const Lane* a, const Lane* b) { return a->name_ < b->name_; });
    for (Lane* l : lanes) {
        LaneSnapshot ls;
        ls.name = l->name_;
        std::lock_guard<std::mutex> g(l->mu_);
        ls.dropped = l->dropped_;
        ls.events.reserve(l->events_.size());
        // Oldest event first: the ring head marks the oldest slot once full.
        for (std::size_t i = 0; i < l->events_.size(); ++i)
            ls.events.push_back(l->events_[(l->head_ + i) % l->events_.size()]);
        snap.lanes.push_back(std::move(ls));
    }
    return snap;
}

std::string Tracer::chrome_json() const {
    const Snapshot snap = snapshot();
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string& ev) {
        if (!first) out += ",";
        first = false;
        out += "\n";
        out += ev;
    };
    for (std::size_t li = 0; li < snap.lanes.size(); ++li) {
        const auto& lane = snap.lanes[li];
        const std::string tid = std::to_string(li + 1);
        bool named[2] = {false, false};
        for (const auto& e : lane.events) {
            // Virtual-clock and host-clock events live in separate pids so
            // the two time bases never share an axis in the viewer.
            const int pid = e.virtual_time ? 0 : 1;
            if (!named[pid]) {
                named[pid] = true;
                std::string m = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                                ",\"tid\":" + tid + ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
                json_escape(m, lane.name);
                m += "\"}}";
                emit(m);
            }
            std::string ev = "{\"ph\":\"";
            switch (e.kind) {
            case EventKind::Begin: ev += "B"; break;
            case EventKind::End: ev += "E"; break;
            case EventKind::Counter: ev += "C"; break;
            case EventKind::Instant: ev += "i"; break;
            }
            ev += "\",\"pid\":" + std::to_string(pid) + ",\"tid\":" + tid + ",\"ts\":";
            append_number(ev, e.t * 1e6); // trace_event timestamps are microseconds
            ev += ",\"name\":\"";
            json_escape(ev, e.name < snap.strings.size() ? snap.strings[e.name] : "");
            ev += "\"";
            if (e.kind == EventKind::Instant) ev += ",\"s\":\"t\"";
            if (e.kind == EventKind::Counter) {
                ev += ",\"args\":{\"value\":";
                append_number(ev, e.value);
                ev += "}";
            } else if (e.args != 0 && e.args < snap.strings.size()) {
                ev += ",\"args\":{" + snap.strings[e.args] + "}";
            }
            ev += "}";
            emit(ev);
        }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::vector<std::uint8_t> Tracer::serialize() const {
    const Snapshot snap = snapshot();

    // Collect the string ids actually referenced, emit them sorted by text,
    // and remap, so insertion order (a thread-scheduling artifact) never
    // reaches the output bytes.
    std::vector<std::uint32_t> used;
    for (const auto& lane : snap.lanes)
        for (const auto& e : lane.events) {
            used.push_back(e.name);
            used.push_back(e.args);
        }
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    std::vector<std::uint32_t> order = used; // ids sorted by text
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        return snap.strings[a] < snap.strings[b];
    });
    std::vector<std::uint32_t> remap(snap.strings.size(), 0);
    for (std::size_t i = 0; i < order.size(); ++i)
        remap[order[i]] = static_cast<std::uint32_t>(i);

    std::vector<std::uint8_t> out;
    for (const char c : std::string_view{"OBSTRACE"}) out.push_back(static_cast<std::uint8_t>(c));
    append_u32(out, 1); // format version
    append_u32(out, static_cast<std::uint32_t>(order.size()));
    for (const std::uint32_t id : order) {
        const std::string& s = snap.strings[id];
        append_u32(out, static_cast<std::uint32_t>(s.size()));
        out.insert(out.end(), s.begin(), s.end());
    }
    append_u32(out, static_cast<std::uint32_t>(snap.lanes.size()));
    for (const auto& lane : snap.lanes) {
        append_u32(out, static_cast<std::uint32_t>(lane.name.size()));
        out.insert(out.end(), lane.name.begin(), lane.name.end());
        append_u64(out, lane.dropped);
        append_u64(out, lane.events.size());
        for (const auto& e : lane.events) {
            append_u32(out, remap[e.name]);
            append_u32(out, remap[e.args]);
            out.push_back(static_cast<std::uint8_t>(e.kind));
            out.push_back(e.virtual_time ? 1 : 0);
            append_f64(out, e.t);
            append_f64(out, e.value);
        }
    }
    return out;
}

Tracer& tracer() {
    static Tracer t;
    return t;
}

} // namespace obs
