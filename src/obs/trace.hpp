#pragma once

/// \file trace.hpp
/// Structured tracing for the whole stack: begin/end spans and counters on
/// named lanes, recorded against either the host clock or a simmpi virtual
/// clock, exported as Chrome trace_event JSON (chrome://tracing, Perfetto)
/// and as a compact deterministic binary stream for regression tests.
///
/// Two gates keep the hot path honest:
///  * compile time — building with -DREPRO_TRACING=0 turns `kTraceCompiled`
///    into a constant false, so every call site written as
///        if constexpr (obs::kTraceCompiled)
///            if (obs::tracer().enabled()) { ... }
///    (or simply `if (obs::active())`) is dead-code-eliminated entirely;
///  * run time — with tracing compiled in (the default), `active()` is one
///    relaxed atomic load, and nothing else happens until `enable()`.
///
/// Determinism contract: events carrying virtual-clock timestamps (the
/// simmpi rank lanes) are bit-identical across repeated seeded runs, and
/// `serialize()` orders lanes and interned strings by name so the emitted
/// bytes are too.  Host-clock events are inherently noisy; enable with
/// `virtual_only = true` to drop them when byte-stable streams are needed.

#ifndef REPRO_TRACING
#define REPRO_TRACING 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace obs {

inline constexpr bool kTraceCompiled = REPRO_TRACING != 0;

enum class EventKind : std::uint8_t { Begin = 0, End = 1, Counter = 2, Instant = 3 };

/// One record in a lane's ring buffer.  Strings (names, argument fragments)
/// are interned in the owning Tracer; `args` is the id of a preformatted
/// JSON object body such as `"bytes":4096,"overlapped":true` (0 = none).
struct TraceEvent {
    std::uint32_t name = 0;
    std::uint32_t args = 0;
    EventKind kind = EventKind::Begin;
    bool virtual_time = false;
    double t = 0.0;     ///< seconds: virtual-clock value, or host time since enable()
    double value = 0.0; ///< Counter payload
};

class Tracer;

/// One ordered event stream: a simmpi rank, a thread-pool worker, or the
/// host thread.  Lanes are created through Tracer::lane() and live until
/// reset(); pointers stay valid across recording.
class Lane {
public:
    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    friend class Tracer;
    Lane(std::string name, std::size_t capacity) : name_(std::move(name)), capacity_(capacity) {}

    std::string name_;
    std::size_t capacity_;
    std::mutex mu_;                  ///< guards events_/head_/dropped_
    std::vector<TraceEvent> events_; ///< ring: oldest at head_ once full
    std::size_t head_ = 0;
    std::uint64_t dropped_ = 0; ///< events overwritten by the ring
};

struct TracerConfig {
    std::size_t lane_capacity = std::size_t{1} << 20; ///< events per lane ring
    /// Drop host-clock events at record time so the stream depends only on
    /// the seeded virtual clocks (the bit-determinism regression mode).
    bool virtual_only = false;
};

class Tracer {
public:
    /// Starts recording.  Resets nothing: lanes recorded before a disable()
    /// survive and new events append after them.
    void enable(TracerConfig cfg = {});
    void disable() { enabled_.store(false, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }
    /// True when the active config drops host-clock events.  Host-clock call
    /// sites whose lane names or argument strings depend on scheduling (the
    /// thread-pool chunk spans) check this and skip interning too, keeping
    /// serialize() byte-stable.
    [[nodiscard]] bool virtual_only() const noexcept {
        return virtual_only_.load(std::memory_order_relaxed);
    }

    /// Drops all lanes and interned strings (recording state is kept).
    void reset();

    /// Interns (or finds) the lane called `name`; the pointer is stable
    /// until reset().  Safe from any thread.
    [[nodiscard]] Lane* lane(std::string_view name);

    /// Interns a string (event names, preformatted JSON argument bodies).
    [[nodiscard]] std::uint32_t intern(std::string_view s);

    /// Host seconds since enable() — the timestamp base for host-clock events.
    [[nodiscard]] double host_now() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
    }

    void begin(Lane* lane, std::uint32_t name, double t, bool virtual_time,
               std::uint32_t args = 0) {
        record(lane, {name, args, EventKind::Begin, virtual_time, t, 0.0});
    }
    void end(Lane* lane, std::uint32_t name, double t, bool virtual_time,
             std::uint32_t args = 0) {
        record(lane, {name, args, EventKind::End, virtual_time, t, 0.0});
    }
    void counter(Lane* lane, std::uint32_t name, double t, double value, bool virtual_time) {
        record(lane, {name, 0, EventKind::Counter, virtual_time, t, value});
    }
    void instant(Lane* lane, std::uint32_t name, double t, bool virtual_time,
                 std::uint32_t args = 0) {
        record(lane, {name, args, EventKind::Instant, virtual_time, t, 0.0});
    }

    struct LaneSnapshot {
        std::string name;
        std::uint64_t dropped = 0;
        std::vector<TraceEvent> events; ///< oldest first
    };
    struct Snapshot {
        std::vector<std::string> strings; ///< id -> text (id 0 = "")
        std::vector<LaneSnapshot> lanes;  ///< sorted by lane name
    };
    [[nodiscard]] Snapshot snapshot() const;

    /// Chrome trace_event JSON (an object with a "traceEvents" array), one
    /// tid per lane, timestamps in microseconds.  Load in chrome://tracing
    /// or https://ui.perfetto.dev.
    [[nodiscard]] std::string chrome_json() const;

    /// Compact binary stream: string table and lanes sorted by name, ids
    /// remapped, doubles as little-endian bit patterns.  Byte-identical
    /// across runs whenever every recorded timestamp is (virtual_only mode).
    [[nodiscard]] std::vector<std::uint8_t> serialize() const;

private:
    void record(Lane* lane, TraceEvent ev);

    std::atomic<bool> enabled_{false};
    std::atomic<bool> virtual_only_{false}; ///< mirrors cfg_ for the lock-free record path
    TracerConfig cfg_{};
    std::chrono::steady_clock::time_point epoch_{};
    mutable std::mutex mu_; ///< guards lanes_ and the string table
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::vector<std::string> strings_{std::string{}}; ///< id 0 reserved
    std::map<std::string, std::uint32_t, std::less<>> string_ids_;
};

/// The process-global tracer every subsystem records into.
[[nodiscard]] Tracer& tracer();

/// True when tracing is compiled in *and* currently enabled.  Constant false
/// under -DREPRO_TRACING=0, so guarded blocks vanish.
[[nodiscard]] inline bool active() noexcept {
    if constexpr (kTraceCompiled)
        return tracer().enabled();
    else
        return false;
}

/// RAII host-clock span on a lane; no-op when tracing is inactive at entry.
class SpanScope {
public:
    SpanScope(Lane* lane, std::string_view name) {
        if (active()) {
            lane_ = lane;
            name_ = tracer().intern(name);
            tracer().begin(lane_, name_, tracer().host_now(), /*virtual_time=*/false);
        }
    }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;
    ~SpanScope() {
        if (lane_ != nullptr && active())
            tracer().end(lane_, name_, tracer().host_now(), /*virtual_time=*/false);
    }

private:
    Lane* lane_ = nullptr;
    std::uint32_t name_ = 0;
};

} // namespace obs
