#include "simmpi/scheduler.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <new>
#include <stdexcept>
#include <vector>

#include "blaslite/counters.hpp"
#include "parallel/thread_pool.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SIMMPI_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define SIMMPI_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(SIMMPI_ASAN)
#define SIMMPI_ASAN 1
#endif
#if __has_feature(thread_sanitizer) && !defined(SIMMPI_TSAN)
#define SIMMPI_TSAN 1
#endif
#endif

#if defined(SIMMPI_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(SIMMPI_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

#ifndef MAP_STACK
#define MAP_STACK 0
#endif

namespace simmpi::detail {

namespace {

struct Fiber {
    enum class State : std::uint8_t { New, Ready, Running, Parking, Parked, Done };
    ucontext_t ctx{};
    std::uint8_t* map = nullptr; ///< mmap base; a PROT_NONE guard page sits first
    std::size_t map_bytes = 0;
    State state = State::New;
    bool wake_pending = false;
    int home = -1; ///< worker this fiber started on; it only ever resumes there
    /// The fiber's private blaslite counter stream, swapped in on every
    /// resume: a task parked mid-StageScope must not see the ops of tasks
    /// that shared its worker meanwhile.
    blaslite::OpCounts counts{};
#if defined(SIMMPI_TSAN)
    void* tsan = nullptr;
#endif
#if defined(SIMMPI_ASAN)
    void* fake_stack = nullptr;
#endif
};

struct Worker {
    ucontext_t ctx{};
    std::deque<int> ready; ///< resumable fibers homed to this worker
#if defined(SIMMPI_TSAN)
    void* tsan = nullptr;
#endif
#if defined(SIMMPI_ASAN)
    void* fake_stack = nullptr;
    const void* stack_bottom = nullptr;
    std::size_t stack_size = 0;
#endif
};

} // namespace

struct TaskScheduler::Impl {
    int ntasks = 0;
    std::size_t stack_bytes = 0;
    std::size_t page = 4096;
    const std::function<void(int)>* body = nullptr;
    std::function<void()> stall;

    std::mutex m;
    std::condition_variable cv;
    std::vector<Fiber> fibers;
    std::vector<Worker> workers;
    std::deque<int> unstarted; ///< never-run fibers, claimable by any worker
    int nrunning = 0;
    int nparked = 0;
    int nfinished = 0;
    bool stalled = false;

    void worker_loop(int w);
    void resume(int w, int f);
    void switch_out(int f, bool dying);
    void finalize_locked(int f);
    void wake_all_parked_locked();
    void prepare_fiber(int f);
    void release_stack(Fiber& fb);
};

namespace {

thread_local TaskScheduler::Impl* tls_impl = nullptr;
thread_local int tls_worker = -1;
thread_local int tls_fiber = -1;

/// Entry point of every fiber (reached through makecontext).  The resume()
/// that first switches here has already set the thread-locals on this
/// worker, and a fiber always resumes on the same OS thread, so they stay
/// valid for the fiber's whole life.
void fiber_main() {
    TaskScheduler::Impl* impl = tls_impl;
    const int f = tls_fiber;
#if defined(SIMMPI_ASAN)
    // First entry: no fake stack to restore; capture the worker's stack
    // bounds so switch_out() can annotate the return switch.
    Worker& wk = impl->workers[static_cast<std::size_t>(tls_worker)];
    __sanitizer_finish_switch_fiber(nullptr, &wk.stack_bottom, &wk.stack_size);
#endif
    (*impl->body)(f); // must not throw (simmpi::World catches everything)
    {
        std::lock_guard lk(impl->m);
        impl->fibers[static_cast<std::size_t>(f)].state = Fiber::State::Done;
    }
    impl->switch_out(f, /*dying=*/true);
    std::abort(); // unreachable: a Done fiber is never resumed
}

} // namespace

void TaskScheduler::Impl::release_stack(Fiber& fb) {
    if (fb.map != nullptr) {
        ::munmap(fb.map, fb.map_bytes);
        fb.map = nullptr;
    }
#if defined(SIMMPI_TSAN)
    if (fb.tsan != nullptr) {
        __tsan_destroy_fiber(fb.tsan);
        fb.tsan = nullptr;
    }
#endif
}

void TaskScheduler::Impl::prepare_fiber(int f) {
    Fiber& fb = fibers[static_cast<std::size_t>(f)];
    const std::size_t usable = (stack_bytes + page - 1) / page * page;
    const std::size_t total = usable + page;
    void* p = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_STACK, -1, 0);
    if (p == MAP_FAILED) throw std::bad_alloc();
    ::mprotect(p, page, PROT_NONE); // overflow hits the guard, not another stack
    fb.map = static_cast<std::uint8_t*>(p);
    fb.map_bytes = total;
    if (getcontext(&fb.ctx) != 0) throw std::runtime_error("simmpi: getcontext failed");
    fb.ctx.uc_stack.ss_sp = fb.map + page;
    fb.ctx.uc_stack.ss_size = usable;
    fb.ctx.uc_link = nullptr;
    makecontext(&fb.ctx, fiber_main, 0);
#if defined(SIMMPI_TSAN)
    fb.tsan = __tsan_create_fiber(0);
#endif
}

void TaskScheduler::Impl::resume(int w, int f) {
    Fiber& fb = fibers[static_cast<std::size_t>(f)];
    Worker& wk = workers[static_cast<std::size_t>(w)];
    tls_fiber = f;
    // Swap in the fiber's op-counter stream; the worker's own stream (which
    // the thread pool folds back to its caller) is restored on return.
    blaslite::OpCounts& tl = blaslite::thread_counts();
    const blaslite::OpCounts worker_counts = tl;
    tl = fb.counts;
#if defined(SIMMPI_TSAN)
    __tsan_switch_to_fiber(fb.tsan, 0);
#endif
#if defined(SIMMPI_ASAN)
    __sanitizer_start_switch_fiber(&wk.fake_stack, fb.ctx.uc_stack.ss_sp,
                                   fb.ctx.uc_stack.ss_size);
#endif
    swapcontext(&wk.ctx, &fb.ctx);
    // Back on the worker: the fiber parked or finished.
#if defined(SIMMPI_ASAN)
    __sanitizer_finish_switch_fiber(wk.fake_stack, nullptr, nullptr);
#endif
    fb.counts = tl;
    tl = worker_counts;
    tls_fiber = -1;
}

void TaskScheduler::Impl::switch_out(int f, [[maybe_unused]] bool dying) {
    Fiber& fb = fibers[static_cast<std::size_t>(f)];
    Worker& wk = workers[static_cast<std::size_t>(fb.home)];
#if defined(SIMMPI_TSAN)
    __tsan_switch_to_fiber(wk.tsan, 0);
#endif
#if defined(SIMMPI_ASAN)
    // A dying fiber passes nullptr so ASan frees its fake-stack bookkeeping.
    __sanitizer_start_switch_fiber(dying ? nullptr : &fb.fake_stack, wk.stack_bottom,
                                   wk.stack_size);
#endif
    swapcontext(&fb.ctx, &wk.ctx);
    // Resumed later by resume() on the same worker (never reached if dying).
#if defined(SIMMPI_ASAN)
    __sanitizer_finish_switch_fiber(fb.fake_stack, nullptr, nullptr);
#endif
}

void TaskScheduler::Impl::finalize_locked(int f) {
    Fiber& fb = fibers[static_cast<std::size_t>(f)];
    switch (fb.state) {
        case Fiber::State::Done:
            ++nfinished;
            release_stack(fb);
            cv.notify_all();
            break;
        case Fiber::State::Parking:
            if (fb.wake_pending) {
                // unpark() raced the switch-out: runnable again immediately.
                fb.wake_pending = false;
                fb.state = Fiber::State::Ready;
                workers[static_cast<std::size_t>(fb.home)].ready.push_back(f);
            } else {
                fb.state = Fiber::State::Parked;
                ++nparked;
            }
            // Idle workers re-check their queues and the quiescence test.
            cv.notify_all();
            break;
        default:
            // A fiber only ever returns to its worker parking or done.
            std::abort();
    }
}

void TaskScheduler::Impl::wake_all_parked_locked() {
    for (int f = 0; f < ntasks; ++f) {
        Fiber& fb = fibers[static_cast<std::size_t>(f)];
        if (fb.state == Fiber::State::Parked) {
            fb.state = Fiber::State::Ready;
            --nparked;
            workers[static_cast<std::size_t>(fb.home)].ready.push_back(f);
        } else if (fb.state == Fiber::State::Parking) {
            fb.wake_pending = true;
        }
    }
    cv.notify_all();
}

void TaskScheduler::Impl::worker_loop(int w) {
    tls_impl = this;
    tls_worker = w;
    Worker& wk = workers[static_cast<std::size_t>(w)];
#if defined(SIMMPI_TSAN)
    wk.tsan = __tsan_get_current_fiber();
#endif
    std::unique_lock lk(m);
    while (nfinished < ntasks) {
        int f = -1;
        if (!wk.ready.empty()) {
            f = wk.ready.front();
            wk.ready.pop_front();
        } else if (!unstarted.empty()) {
            f = unstarted.front();
            unstarted.pop_front();
            fibers[static_cast<std::size_t>(f)].home = w; // affinity fixed here
        }
        if (f >= 0) {
            fibers[static_cast<std::size_t>(f)].state = Fiber::State::Running;
            ++nrunning;
            lk.unlock();
            resume(w, f);
            lk.lock();
            --nrunning;
            finalize_locked(f);
            continue;
        }
        // Nothing runnable on this worker.  Every wake source is itself a
        // task, so "none running or ready anywhere, some parked" is a proven
        // deadlock — detected instantly, no timeout needed.
        bool any_ready = false;
        for (const Worker& other : workers) any_ready |= !other.ready.empty();
        if (nrunning == 0 && nparked > 0 && unstarted.empty() && !any_ready) {
            if (!stalled) {
                stalled = true;
                lk.unlock();
                if (stall) stall();
                lk.lock();
                // Wake the parked tasks so they observe what the handler
                // flagged (simmpi aborts the world) and unwind.
                wake_all_parked_locked();
            }
            continue;
        }
        cv.wait(lk);
    }
    cv.notify_all();
    lk.unlock();
    tls_impl = nullptr;
    tls_worker = -1;
}

TaskScheduler::TaskScheduler(int ntasks, std::size_t stack_bytes) : impl_(new Impl) {
    if (ntasks < 1) throw std::invalid_argument("simmpi: TaskScheduler needs >= 1 task");
    impl_->ntasks = ntasks;
    impl_->stack_bytes = stack_bytes < 64 * 1024 ? 64 * 1024 : stack_bytes;
    const long page = ::sysconf(_SC_PAGESIZE);
    impl_->page = page > 0 ? static_cast<std::size_t>(page) : 4096;
}

TaskScheduler::~TaskScheduler() {
    for (Fiber& fb : impl_->fibers) impl_->release_stack(fb);
    delete impl_;
}

bool TaskScheduler::inside_task() noexcept { return tls_impl != nullptr && tls_fiber >= 0; }

int TaskScheduler::current_task() noexcept { return tls_fiber; }

void TaskScheduler::set_stall_handler(std::function<void()> handler) {
    impl_->stall = std::move(handler);
}

void TaskScheduler::park(std::unique_lock<std::mutex>& lk) {
    Impl* impl = impl_;
    const int f = tls_fiber;
    if (impl != tls_impl || f < 0)
        throw std::logic_error("simmpi: park() called outside one of this scheduler's tasks");
    {
        std::lock_guard g(impl->m);
        impl->fibers[static_cast<std::size_t>(f)].state = Fiber::State::Parking;
    }
    // The caller's structure lock is released only after the parking state
    // is registered: an unpark triggered by data published under that lock
    // always lands as wake_pending at worst, never gets lost.
    lk.unlock();
    impl->switch_out(f, /*dying=*/false);
    lk.lock();
}

void TaskScheduler::unpark(int task) {
    Impl* impl = impl_;
    std::lock_guard g(impl->m);
    Fiber& fb = impl->fibers[static_cast<std::size_t>(task)];
    switch (fb.state) {
        case Fiber::State::Parked:
            fb.state = Fiber::State::Ready;
            --impl->nparked;
            impl->workers[static_cast<std::size_t>(fb.home)].ready.push_back(task);
            impl->cv.notify_all();
            break;
        case Fiber::State::Done:
            break;
        default:
            // Parking (switch-out in flight), Running or already Ready: the
            // task re-checks its predicate anyway; remember the wake so a
            // park racing this unpark resumes immediately.
            fb.wake_pending = true;
            break;
    }
}

void TaskScheduler::unpark_all() {
    std::lock_guard g(impl_->m);
    impl_->wake_all_parked_locked();
}

void TaskScheduler::run(const std::function<void(int)>& body) {
    Impl& im = *impl_;
    if (tls_impl != nullptr)
        throw std::logic_error("simmpi: nested TaskScheduler::run on one thread");
    im.body = &body;
    im.fibers.assign(static_cast<std::size_t>(im.ntasks), Fiber{});
    im.unstarted.clear();
    // All stacks and contexts are prepared up front so allocation failure
    // throws cleanly here instead of mid-multiplex on a worker.
    for (int f = 0; f < im.ntasks; ++f) {
        im.prepare_fiber(f);
        im.unstarted.push_back(f);
    }
    im.nrunning = im.nparked = im.nfinished = 0;
    im.stalled = false;
    const unsigned pool_threads = parallel::pool().size();
    const int nworkers =
        static_cast<int>(pool_threads < 1 ? 1 : pool_threads) < im.ntasks
            ? static_cast<int>(pool_threads < 1 ? 1 : pool_threads)
            : im.ntasks;
    im.workers.assign(static_cast<std::size_t>(nworkers), Worker{});
    parallel::pool().parallel_for(static_cast<std::size_t>(nworkers),
                                  [&im](std::size_t b, std::size_t e) {
                                      for (std::size_t w = b; w < e; ++w)
                                          im.worker_loop(static_cast<int>(w));
                                  });
    for (Fiber& fb : im.fibers) im.release_stack(fb);
    im.body = nullptr;
}

} // namespace simmpi::detail
