#include "simmpi/simmpi.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace simmpi {

std::string to_string(CommKind k) {
    switch (k) {
        case CommKind::Ptp: return "ptp";
        case CommKind::Alltoall: return "alltoall";
        case CommKind::Allreduce: return "allreduce";
        case CommKind::Gather: return "gather";
        case CommKind::Bcast: return "bcast";
        case CommKind::Barrier: return "barrier";
    }
    return "?";
}

namespace {

double event_seconds(const CommEventKey& key, const netsim::NetworkModel& net, int nprocs) {
    switch (key.kind) {
        case CommKind::Ptp: return net.ptp_seconds(key.bytes);
        case CommKind::Alltoall: return net.alltoall_seconds(nprocs, key.bytes);
        case CommKind::Allreduce: return net.allreduce_seconds(nprocs, key.bytes);
        case CommKind::Gather:
        case CommKind::Bcast: return net.gather_seconds(nprocs, key.bytes);
        case CommKind::Barrier: return net.barrier_seconds(nprocs);
    }
    return 0.0;
}

} // namespace

double price_stage(const CommLog& log, int stage, const netsim::NetworkModel& net, int nprocs) {
    const auto it = log.find(stage);
    if (it == log.end()) return 0.0;
    double t = 0.0;
    for (const auto& [key, count] : it->second)
        t += static_cast<double>(count) * event_seconds(key, net, nprocs);
    return t;
}

double price_log(const CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    double t = 0.0;
    for (const auto& [stage, events] : log) {
        (void)events;
        t += price_stage(log, stage, net, nprocs);
    }
    return t;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

void Comm::advance_compute(double seconds) noexcept {
    cpu_ += seconds;
    wall_ += seconds;
}

double Comm::faulted_cost(double base_seconds) {
    const netsim::FaultModel& fm = world_->net_.fault;
    const std::uint64_t idx = msg_index_++;
    if (!fm.enabled()) return base_seconds;
    const netsim::FaultPerturbation p = fm.perturb(rank_, idx, base_seconds);
    const double cost = (base_seconds + p.extra_seconds) * fm.rank_slowdown(rank_);
    FaultStageStats& fs = fault_log_[stage_];
    fs.retransmits += static_cast<std::uint64_t>(p.retransmits);
    fs.extra_seconds += cost - base_seconds;
    return cost;
}

void Comm::send(int dest, int tag, std::span<const double> data) {
    assert(dest >= 0 && dest < size_ && dest != rank_);
    const std::size_t bytes = data.size_bytes();
    World::Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.payload.assign(data.begin(), data.end());
    msg.avail_time = wall_ + faulted_cost(world_->net_.ptp_seconds(bytes));
    record(CommKind::Ptp, bytes);
    // The sender returns to work after the injection overhead; the transfer
    // itself (with any retransmits/jitter) lands on the receiver's clock.
    const double overhead = 0.5 * world_->net_.latency_us * 1e-6;
    wall_ += overhead;
    cpu_ += overhead * world_->net_.cpu_poll_fraction;
    world_->deliver(dest, std::move(msg));
}

void Comm::recv(int src, int tag, std::span<double> data) {
    World::Message msg = world_->take(rank_, src, tag);
    if (msg.payload.size() != data.size())
        throw std::runtime_error("simmpi: recv size mismatch");
    std::copy(msg.payload.begin(), msg.payload.end(), data.begin());
    const double before = wall_;
    wall_ = std::max(wall_, msg.avail_time);
    // TCP stacks block (pure idle); polling stacks burn CPU while waiting.
    cpu_ += (wall_ - before) * world_->net_.cpu_poll_fraction;
}

void Comm::sendrecv(int partner, int tag, std::span<const double> send_data,
                    std::span<double> recv_data) {
    // send() is buffered (deposits into the partner's mailbox), so the
    // send-then-recv order cannot deadlock.
    send(partner, tag, send_data);
    recv(partner, tag, recv_data);
}

double Comm::sync_and_charge(double coll_seconds) {
    // Per-rank perturbation: a straggler leaves the collective late, so its
    // peers accumulate idle time at the *next* synchronisation point —
    // exactly how a slow node degrades a real cluster.
    const double cost = faulted_cost(coll_seconds);
    const double all = world_->rendezvous_max(wall_);
    const double idle = all - wall_;
    wall_ = all + cost;
    cpu_ += (idle + cost) * world_->net_.cpu_poll_fraction;
    return wall_;
}

void Comm::alltoall(std::span<const double> send, std::span<double> recv, std::size_t block) {
    const std::size_t p = static_cast<std::size_t>(size_);
    if (send.size() != p * block || recv.size() != p * block)
        throw std::runtime_error("simmpi: alltoall size mismatch");
    const std::size_t bytes = block * sizeof(double);
    record(CommKind::Alltoall, bytes);

    // Stage the data: rank r owns rows [r*p*block, (r+1)*p*block).
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p * p * block) world_->exchange_.resize(p * p * block);
    }
    world_->rendezvous_max(wall_); // everyone sized before anyone writes
    std::copy(send.begin(), send.end(),
              world_->exchange_.begin() + static_cast<std::ptrdiff_t>(rank_ * p * block));
    world_->rendezvous_max(wall_); // writes complete before reads
    for (std::size_t j = 0; j < p; ++j) {
        const double* srcp = world_->exchange_.data() + (j * p + rank_) * block;
        std::copy(srcp, srcp + block, recv.begin() + static_cast<std::ptrdiff_t>(j * block));
    }
    sync_and_charge(world_->net_.alltoall_seconds(size_, bytes));
}

void Comm::allreduce_sum(std::span<double> data) {
    const std::size_t n = data.size();
    const std::size_t p = static_cast<std::size_t>(size_);
    record(CommKind::Allreduce, n * sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p * n) world_->exchange_.resize(p * n);
    }
    world_->rendezvous_max(wall_);
    std::copy(data.begin(), data.end(),
              world_->exchange_.begin() + static_cast<std::ptrdiff_t>(rank_ * n));
    world_->rendezvous_max(wall_);
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t r = 0; r < p; ++r) s += world_->exchange_[r * n + i];
        data[i] = s;
    }
    sync_and_charge(world_->net_.allreduce_seconds(size_, n * sizeof(double)));
}

double Comm::allreduce_sum(double v) {
    double buf[1] = {v};
    allreduce_sum(std::span<double>(buf, 1));
    return buf[0];
}

double Comm::allreduce_max(double v) {
    const std::size_t p = static_cast<std::size_t>(size_);
    record(CommKind::Allreduce, sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p) world_->exchange_.resize(p);
    }
    world_->rendezvous_max(wall_);
    world_->exchange_[static_cast<std::size_t>(rank_)] = v;
    world_->rendezvous_max(wall_);
    double m = world_->exchange_[0];
    for (std::size_t r = 1; r < p; ++r) m = std::max(m, world_->exchange_[r]);
    sync_and_charge(world_->net_.allreduce_seconds(size_, sizeof(double)));
    return m;
}

double Comm::allreduce_min(double v) { return -allreduce_max(-v); }

void Comm::gather(std::span<const double> send, std::vector<double>& recv, int root) {
    const std::size_t n = send.size();
    const std::size_t p = static_cast<std::size_t>(size_);
    record(CommKind::Gather, n * sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p * n) world_->exchange_.resize(p * n);
    }
    world_->rendezvous_max(wall_);
    std::copy(send.begin(), send.end(),
              world_->exchange_.begin() + static_cast<std::ptrdiff_t>(rank_ * n));
    world_->rendezvous_max(wall_);
    if (rank_ == root) {
        recv.assign(world_->exchange_.begin(),
                    world_->exchange_.begin() + static_cast<std::ptrdiff_t>(p * n));
    }
    sync_and_charge(world_->net_.gather_seconds(size_, n * sizeof(double)));
}

void Comm::bcast(std::span<double> data, int root) {
    const std::size_t n = data.size();
    record(CommKind::Bcast, n * sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < n) world_->exchange_.resize(n);
    }
    world_->rendezvous_max(wall_);
    if (rank_ == root)
        std::copy(data.begin(), data.end(), world_->exchange_.begin());
    world_->rendezvous_max(wall_);
    if (rank_ != root)
        std::copy(world_->exchange_.begin(),
                  world_->exchange_.begin() + static_cast<std::ptrdiff_t>(n), data.begin());
    sync_and_charge(world_->net_.gather_seconds(size_, n * sizeof(double)));
}

void Comm::barrier() {
    record(CommKind::Barrier, 0);
    sync_and_charge(world_->net_.barrier_seconds(size_));
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int nprocs, netsim::NetworkModel net)
    : nprocs_(nprocs), net_(std::move(net)), mailboxes_(static_cast<std::size_t>(nprocs)) {
    if (nprocs < 1) throw std::invalid_argument("simmpi: need at least one rank");
}

void World::deliver(int dest, Message msg) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
        std::lock_guard lk(box.mtx);
        box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
}

void World::abort_world() {
    aborted_.store(true);
    rdv_.cv.notify_all();
    for (auto& box : mailboxes_) box.cv.notify_all();
}

World::Message World::take(int self, int src, int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watchdog_seconds_);
    std::unique_lock lk(box.mtx);
    for (;;) {
        const auto it = std::find_if(box.queue.begin(), box.queue.end(), [&](const Message& m) {
            return m.src == src && m.tag == tag;
        });
        if (it != box.queue.end()) {
            Message msg = std::move(*it);
            box.queue.erase(it);
            return msg;
        }
        if (aborted_.load()) throw Aborted{};
        if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
            lk.unlock();
            throw DeadlockError("simmpi: rank " + std::to_string(self) +
                                " waited > watchdog for a message from rank " +
                                std::to_string(src) + " tag " + std::to_string(tag) +
                                " (missing send or wrong tag)");
        }
    }
}

double World::rendezvous_max(double wall) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watchdog_seconds_);
    std::unique_lock lk(rdv_.mtx);
    const std::uint64_t gen = rdv_.generation;
    rdv_.max_wall = std::max(rdv_.max_wall, wall);
    if (++rdv_.waiting == nprocs_) {
        rdv_.waiting = 0;
        ++rdv_.generation;
        // max_wall becomes this generation's result; reset happens lazily by
        // the first arriver of the next generation reading-then-maxing is
        // wrong, so snapshot and clear here.
        const double result = rdv_.max_wall;
        rdv_.max_wall = 0.0;
        rdv_.result_ = result;
        rdv_.cv.notify_all();
        return result;
    }
    while (rdv_.generation == gen) {
        if (aborted_.load()) throw Aborted{};
        if (rdv_.cv.wait_until(lk, deadline) == std::cv_status::timeout &&
            rdv_.generation == gen) {
            lk.unlock();
            throw DeadlockError(
                "simmpi: collective rendezvous waited > watchdog "
                "(some rank never entered the collective)");
        }
    }
    return rdv_.result_;
}

std::vector<RankReport> World::run(const std::function<void(Comm&)>& fn) {
    std::vector<RankReport> reports(static_cast<std::size_t>(nprocs_));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs_));
    std::mutex err_mtx;
    std::exception_ptr first_error;

    for (int r = 0; r < nprocs_; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(*this, r, nprocs_);
            try {
                fn(comm);
            } catch (const Aborted&) {
                // Woken by another rank's failure; unwind quietly.
            } catch (...) {
                {
                    std::lock_guard lk(err_mtx);
                    if (!first_error) first_error = std::current_exception();
                }
                // Release every rank still blocked in take()/rendezvous so
                // run() can join and rethrow instead of hanging.
                abort_world();
            }
            RankReport& rep = reports[static_cast<std::size_t>(r)];
            rep.rank = r;
            rep.cpu_seconds = comm.cpu_time();
            rep.wall_seconds = comm.wall_time();
            rep.log = comm.log();
            rep.fault_log = comm.fault_log();
        });
    }
    for (auto& t : threads) t.join();
    if (first_error) {
        // Scrub the half-finished run so the world is reusable: drop stale
        // messages and rewind the rendezvous (deserters left `waiting` high).
        aborted_.store(false);
        for (auto& box : mailboxes_) box.queue.clear();
        rdv_.waiting = 0;
        rdv_.max_wall = 0.0;
        std::rethrow_exception(first_error);
    }
    return reports;
}

} // namespace simmpi
