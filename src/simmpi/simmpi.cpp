#include "simmpi/simmpi.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>

#include "simmpi/scheduler.hpp"

namespace simmpi {

std::string to_string(CommKind k) {
    switch (k) {
        case CommKind::Ptp: return "ptp";
        case CommKind::Alltoall: return "alltoall";
        case CommKind::Allreduce: return "allreduce";
        case CommKind::Gather: return "gather";
        case CommKind::Bcast: return "bcast";
        case CommKind::Barrier: return "barrier";
        case CommKind::Split: return "split";
    }
    return "?";
}

namespace {

double event_seconds(const CommEventKey& key, const netsim::NetworkModel& net, int nprocs) {
    // group == 0 marks a world-communicator event: it is priced with the
    // nprocs the caller supplies, which is what lets one world log be
    // re-priced across rank counts.  Subcommunicator events pin their size.
    const int p = key.group != 0 ? static_cast<int>(key.group) : nprocs;
    const int conc = std::max(1, static_cast<int>(key.groups));
    switch (key.kind) {
        case CommKind::Ptp: return net.ptp_seconds(key.bytes);
        case CommKind::Alltoall: return net.alltoall_seconds(p, key.bytes, conc);
        case CommKind::Allreduce:
        case CommKind::Split: return net.allreduce_seconds(p, key.bytes, conc);
        case CommKind::Gather:
        case CommKind::Bcast: return net.gather_seconds(p, key.bytes, conc);
        case CommKind::Barrier: return net.barrier_seconds(p, conc);
    }
    return 0.0;
}

} // namespace

double price_stage(const CommLog& log, int stage, const netsim::NetworkModel& net, int nprocs) {
    const auto it = log.find(stage);
    if (it == log.end()) return 0.0;
    double t = 0.0;
    for (const auto& [key, count] : it->second)
        t += static_cast<double>(count) * event_seconds(key, net, nprocs);
    return t;
}

double price_log(const CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    double t = 0.0;
    for (const auto& [stage, events] : log) {
        (void)events;
        t += price_stage(log, stage, net, nprocs);
    }
    return t;
}

SplitSeconds price_stage_split(const CommLog& log, int stage, const netsim::NetworkModel& net,
                               int nprocs) {
    SplitSeconds out;
    const auto it = log.find(stage);
    if (it == log.end()) return out;
    for (const auto& [key, count] : it->second) {
        const double t = static_cast<double>(count) * event_seconds(key, net, nprocs);
        (key.overlapped ? out.overlapped : out.blocking) += t;
    }
    return out;
}

SplitSeconds price_log_split(const CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    SplitSeconds out;
    for (const auto& [stage, events] : log) {
        (void)events;
        const SplitSeconds s = price_stage_split(log, stage, net, nprocs);
        out.blocking += s.blocking;
        out.overlapped += s.overlapped;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

void Comm::advance_compute(double seconds) noexcept {
    rs_->cpu += seconds;
    rs_->wall += seconds;
}

namespace {

/// Preformatted trace_event argument fragment for one comm op.  Interning
/// dedups: a run touches few distinct (kind, bytes) pairs.
std::uint32_t comm_args(CommKind kind, std::size_t bytes, bool overlapped) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"kind\":\"%s\",\"bytes\":%zu,\"overlapped\":%s",
                  to_string(kind).c_str(), bytes, overlapped ? "true" : "false");
    return obs::tracer().intern(buf);
}

} // namespace

std::uint32_t Comm::trace_begin(const char* name, CommKind kind, std::size_t bytes,
                                bool overlapped) {
    if (!obs::active()) return 0;
    obs::Tracer& tr = obs::tracer();
    if (rs_->trace_lane == nullptr) rs_->trace_lane = tr.lane("rank " + std::to_string(wrank_));
    const std::uint32_t id = tr.intern(name);
    tr.begin(rs_->trace_lane, id, rs_->wall, /*virtual_time=*/true,
             comm_args(kind, bytes, overlapped));
    return id;
}

void Comm::trace_end(std::uint32_t name_id) {
    if (name_id == 0 || !obs::active() || rs_->trace_lane == nullptr) return;
    obs::tracer().end(rs_->trace_lane, name_id, rs_->wall, /*virtual_time=*/true);
}

void Comm::trace_instant(const char* name, CommKind kind, std::size_t bytes, bool overlapped) {
    if (!obs::active()) return;
    obs::Tracer& tr = obs::tracer();
    if (rs_->trace_lane == nullptr) rs_->trace_lane = tr.lane("rank " + std::to_string(wrank_));
    tr.instant(rs_->trace_lane, tr.intern(name), rs_->wall, /*virtual_time=*/true,
               comm_args(kind, bytes, overlapped));
}

void Comm::trace_counter(const char* name, double value) {
    if (!obs::active()) return;
    obs::Tracer& tr = obs::tracer();
    if (rs_->trace_lane == nullptr) rs_->trace_lane = tr.lane("rank " + std::to_string(wrank_));
    tr.counter(rs_->trace_lane, tr.intern(name), rs_->wall, value, /*virtual_time=*/true);
}

double Comm::faulted_cost(double base_seconds) {
    const netsim::FaultModel& fm = world_->net_.fault;
    // The fault stream is keyed by *world* rank: a rank draws the same
    // perturbations no matter which communicator the event ran on.  The kill
    // event fires *before* the event index is consumed, so a replay restored
    // to an earlier msg_index walks through the same position again (and
    // dies again unless the kill has been disarmed).
    if (fm.should_kill(wrank_, rs_->msg_index))
        throw RankKilledError(wrank_, rs_->msg_index, rs_->wall);
    const std::uint64_t idx = rs_->msg_index++;
    if (!fm.enabled()) return base_seconds;
    const netsim::FaultPerturbation p = fm.perturb(wrank_, idx, base_seconds);
    const double cost = (base_seconds + p.extra_seconds) * fm.rank_slowdown(wrank_);
    FaultStageStats& fs = rs_->fault_log[rs_->stage];
    fs.retransmits += static_cast<std::uint64_t>(p.retransmits);
    fs.extra_seconds += cost - base_seconds;
    if (p.retransmits > 0) trace_counter("fault.retransmits", static_cast<double>(p.retransmits));
    if (cost != base_seconds) trace_counter("fault.extra_s", cost - base_seconds);
    return cost;
}

void Comm::send(int dest, int tag, std::span<const double> data) {
    require("send");
    assert(dest >= 0 && dest < gsize_ && dest != grank_);
    const std::size_t bytes = data.size_bytes();
    const std::uint32_t span = trace_begin("send", CommKind::Ptp, bytes);
    detail::Message msg;
    msg.src = grank_;
    msg.ctx = ctx_;
    msg.tag = tag;
    msg.payload.assign(data.begin(), data.end());
    msg.avail_time = rs_->wall + faulted_cost(world_->net_.ptp_seconds(bytes));
    record(CommKind::Ptp, bytes);
    // The sender returns to work after the injection overhead; the transfer
    // itself (with any retransmits/jitter) lands on the receiver's clock.
    const double overhead = 0.5 * world_->net_.latency_us * 1e-6;
    rs_->wall += overhead;
    rs_->cpu += overhead * world_->net_.cpu_poll_fraction;
    world_->deliver(group_->members[static_cast<std::size_t>(dest)], std::move(msg));
    trace_end(span);
}

void Comm::recv(int src, int tag, std::span<double> data) {
    require("recv");
    const std::uint32_t span = trace_begin("recv", CommKind::Ptp, data.size_bytes());
    detail::Message msg = world_->take(wrank_, src, ctx_, tag);
    if (msg.payload.size() != data.size())
        throw std::runtime_error("simmpi: recv size mismatch");
    std::copy(msg.payload.begin(), msg.payload.end(), data.begin());
    const double before = rs_->wall;
    rs_->wall = std::max(rs_->wall, msg.avail_time);
    // TCP stacks block (pure idle); polling stacks burn CPU while waiting.
    rs_->cpu += (rs_->wall - before) * world_->net_.cpu_poll_fraction;
    trace_end(span);
}

void Comm::sendrecv(int partner, int tag, std::span<const double> send_data,
                    std::span<double> recv_data) {
    // send() is buffered (deposits into the partner's mailbox), so the
    // send-then-recv order cannot deadlock.
    send(partner, tag, send_data);
    recv(partner, tag, recv_data);
}

// ---------------------------------------------------------------------------
// Nonblocking point-to-point
// ---------------------------------------------------------------------------

void Comm::post_background(int dest, int tag, std::span<const double> data, double base_cost) {
    detail::Message msg;
    msg.src = grank_;
    msg.ctx = ctx_;
    msg.tag = tag;
    msg.payload.assign(data.begin(), data.end());
    const double cost = faulted_cost(base_cost);
    // Posted transfers queue on this rank's NIC: a burst of isends costs
    // what serialized transfers cost, it just accrues while the rank works.
    const double start = std::max(rs_->wall, rs_->nic_busy);
    msg.avail_time = start + cost;
    msg.cost = cost;
    rs_->nic_busy = msg.avail_time;
    world_->deliver(group_->members[static_cast<std::size_t>(dest)], std::move(msg));
}

Request Comm::isend(int dest, int tag, std::span<const double> data) {
    require("isend");
    assert(dest >= 0 && dest < gsize_ && dest != grank_);
    const std::size_t bytes = data.size_bytes();
    record(CommKind::Ptp, bytes, /*overlapped=*/true);
    trace_instant("isend", CommKind::Ptp, bytes, /*overlapped=*/true);
    post_background(dest, tag, data, world_->net_.ptp_seconds(bytes));
    // The sender pays the same injection overhead as a blocking send; the
    // payload is buffered, so the request is complete at once.
    const double overhead = 0.5 * world_->net_.latency_us * 1e-6;
    rs_->wall += overhead;
    rs_->cpu += overhead * world_->net_.cpu_poll_fraction;
    Request r;
    r.kind_ = Request::Kind::Send;
    r.done_ = true;
    r.peer_ = dest;
    r.tag_ = tag;
    return r;
}

Request Comm::irecv(int src, int tag, std::span<double> data) {
    require("irecv");
    assert(src >= 0 && src < gsize_ && src != grank_);
    Request r;
    r.kind_ = Request::Kind::Recv;
    r.peer_ = src;
    r.tag_ = tag;
    r.buf_ = data;
    r.post_wall_ = rs_->wall;
    ++rs_->pending_recvs;
    return r;
}

void Comm::absorb(Request& r, detail::Message&& msg) {
    if (msg.payload.size() != r.buf_.size())
        throw std::runtime_error("simmpi: irecv size mismatch");
    assert(r.post_wall_ <= rs_->wall);
    std::copy(msg.payload.begin(), msg.payload.end(), r.buf_.begin());
    const double before = rs_->wall;
    rs_->wall = std::max(rs_->wall, msg.avail_time);
    const double idle = rs_->wall - before;
    rs_->cpu += idle * world_->net_.cpu_poll_fraction;
    // Whatever part of the background transfer did not surface as idle was
    // hidden under this rank's own work since the post: that is the
    // "overlapped comm" the application tables report.
    const double hidden = std::max(0.0, msg.cost - idle);
    rs_->overlap_log[rs_->stage] += hidden;
    if (hidden > 0.0) trace_counter("overlap.hidden_s", hidden);
    r.done_ = true;
    --rs_->pending_recvs;
}

void Comm::wait(Request& r) {
    if (!r.valid()) throw std::runtime_error("simmpi: wait on an empty Request");
    if (r.done_) return;
    const std::uint32_t span =
        trace_begin("wait", CommKind::Ptp, r.buf_.size_bytes(), /*overlapped=*/true);
    absorb(r, world_->take(wrank_, r.peer_, ctx_, r.tag_));
    trace_end(span);
}

void Comm::waitall(std::span<Request> rs) {
    for (Request& r : rs)
        if (r.valid()) wait(r);
}

bool Comm::test(Request& r) {
    if (!r.valid()) throw std::runtime_error("simmpi: test on an empty Request");
    if (r.done_) return true;
    detail::Message msg;
    if (!world_->try_take(wrank_, r.peer_, ctx_, r.tag_, rs_->wall, msg)) return false;
    const std::uint32_t span =
        trace_begin("wait", CommKind::Ptp, r.buf_.size_bytes(), /*overlapped=*/true);
    absorb(r, std::move(msg));
    trace_end(span);
    return true;
}

void Comm::check_no_pending() const {
    if (rs_->pending_recvs != 0)
        throw std::runtime_error("simmpi: rank " + std::to_string(wrank_) + " finished with " +
                                 std::to_string(rs_->pending_recvs) +
                                 " pending nonblocking request(s) never waited on");
}

// ---------------------------------------------------------------------------
// Checkpointable rank state
// ---------------------------------------------------------------------------

void Comm::save_state(ckpt::SectionWriter& w) const {
    if (ctx_ != 0)
        throw std::logic_error(
            "simmpi: save_state on a subcommunicator; use save_group_state for splits");
    if (rs_->pending_recvs != 0)
        throw std::logic_error("simmpi: checkpoint with " + std::to_string(rs_->pending_recvs) +
                               " pending nonblocking request(s); checkpoint between steps");
    w.f64(rs_->cpu);
    w.f64(rs_->wall);
    w.f64(rs_->nic_busy);
    w.u64(rs_->msg_index);
    w.i64(coll_seq_);
    w.i64(split_seq_);
    w.i64(rs_->stage);
    w.u64(rs_->log.size());
    for (const auto& [stage, events] : rs_->log) {
        w.i64(stage);
        w.u64(events.size());
        for (const auto& [key, count] : events) {
            w.u32(static_cast<std::uint32_t>(key.kind));
            w.u64(key.bytes);
            w.u32(key.overlapped ? 1 : 0);
            w.u32(key.group);
            w.u32(key.groups);
            w.u64(count);
        }
    }
    w.u64(rs_->fault_log.size());
    for (const auto& [stage, fs] : rs_->fault_log) {
        w.i64(stage);
        w.u64(fs.retransmits);
        w.f64(fs.extra_seconds);
    }
    w.u64(rs_->overlap_log.size());
    for (const auto& [stage, hidden] : rs_->overlap_log) {
        w.i64(stage);
        w.f64(hidden);
    }
}

void Comm::restore_state(ckpt::SectionReader& r) {
    if (ctx_ != 0)
        throw std::logic_error(
            "simmpi: restore_state on a subcommunicator; use restore_group_state for splits");
    rs_->cpu = r.f64();
    rs_->wall = r.f64();
    rs_->nic_busy = r.f64();
    rs_->msg_index = r.u64();
    coll_seq_ = static_cast<int>(r.i64());
    split_seq_ = static_cast<int>(r.i64());
    rs_->stage = static_cast<int>(r.i64());
    rs_->log.clear();
    for (std::uint64_t i = 0, nstages = r.u64(); i < nstages; ++i) {
        const int stage = static_cast<int>(r.i64());
        auto& events = rs_->log[stage];
        for (std::uint64_t j = 0, nkeys = r.u64(); j < nkeys; ++j) {
            CommEventKey key;
            const std::uint32_t kind = r.u32();
            if (kind > static_cast<std::uint32_t>(CommKind::Split))
                r.fail("comm event kind " + std::to_string(kind) + " out of range");
            key.kind = static_cast<CommKind>(kind);
            key.bytes = static_cast<std::size_t>(r.u64());
            key.overlapped = r.u32() != 0;
            key.group = r.u32();
            key.groups = r.u32();
            events[key] = r.u64();
        }
    }
    rs_->fault_log.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        const int stage = static_cast<int>(r.i64());
        FaultStageStats& fs = rs_->fault_log[stage];
        fs.retransmits = r.u64();
        fs.extra_seconds = r.f64();
    }
    rs_->overlap_log.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        const int stage = static_cast<int>(r.i64());
        rs_->overlap_log[stage] = r.f64();
    }
    r.expect_end();
}

void Comm::save_group_state(ckpt::SectionWriter& w) const {
    require("save_group_state");
    w.u64(ctx_);
    w.i64(coll_seq_);
    w.i64(split_seq_);
}

void Comm::restore_group_state(ckpt::SectionReader& r) {
    require("restore_group_state");
    const std::uint64_t ctx = r.u64();
    if (ctx != ctx_)
        r.fail("subcommunicator context mismatch: checkpoint has " + std::to_string(ctx) +
               ", live communicator is " + std::to_string(ctx_) +
               " (splits must be re-derived in the original order before restore)");
    coll_seq_ = static_cast<int>(r.i64());
    split_seq_ = static_cast<int>(r.i64());
}

// ---------------------------------------------------------------------------
// Subcommunicators
// ---------------------------------------------------------------------------

namespace {

/// FNV-1a over the 8 bytes of v, folding into h.
std::uint64_t mix_ctx(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

Comm Comm::split(int color, int key) {
    require("split");
    detail::GroupState& g = *group_;
    const std::size_t p = static_cast<std::size_t>(gsize_);
    record(CommKind::Split, 2 * sizeof(double));
    const std::uint32_t span = trace_begin("split", CommKind::Split, 2 * sizeof(double));
    // Allgather every member's (color, key) through the staging area — the
    // same three-rendezvous discipline as the data collectives.
    {
        std::lock_guard lk(g.exch_mtx);
        if (g.exchange.size() < 2 * p) g.exchange.resize(2 * p);
    }
    world_->rendezvous_max(g, rs_->wall);
    g.exchange[2 * static_cast<std::size_t>(grank_)] = static_cast<double>(color);
    g.exchange[2 * static_cast<std::size_t>(grank_) + 1] = static_cast<double>(key);
    world_->rendezvous_max(g, rs_->wall);
    std::vector<std::pair<int, int>> ck(p); // (color, key) per parent rank
    for (std::size_t r = 0; r < p; ++r)
        ck[r] = {static_cast<int>(g.exchange[2 * r]), static_cast<int>(g.exchange[2 * r + 1])};
    sync_and_charge(world_->net_.allreduce_seconds(gsize_, 2 * sizeof(double),
                                                   static_cast<int>(g.siblings)));
    trace_end(span);
    ++split_seq_;

    // Sibling count: the distinct colors of this split execute their
    // collectives concurrently, which shared-medium topologies must price.
    std::vector<int> colors;
    colors.reserve(p);
    for (const auto& [c, k] : ck) {
        (void)k;
        if (c >= 0) colors.push_back(c);
    }
    std::sort(colors.begin(), colors.end());
    colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
    const auto siblings = static_cast<std::uint32_t>(std::max<std::size_t>(1, colors.size()));

    if (color < 0) return Comm(*world_, rs_, nullptr, -1, wrank_, 0);

    // Members: parent ranks with my color, ordered by (key, parent rank),
    // translated to world ranks.
    std::vector<int> mine;
    for (int r = 0; r < gsize_; ++r)
        if (ck[static_cast<std::size_t>(r)].first == color) mine.push_back(r);
    std::stable_sort(mine.begin(), mine.end(), [&](int a, int b) {
        return ck[static_cast<std::size_t>(a)].second < ck[static_cast<std::size_t>(b)].second;
    });
    std::vector<int> members(mine.size());
    int my_grank = -1;
    for (std::size_t i = 0; i < mine.size(); ++i) {
        members[i] = g.members[static_cast<std::size_t>(mine[i])];
        if (mine[i] == grank_) my_grank = static_cast<int>(i);
    }
    assert(my_grank >= 0);

    // The derived context is a pure function of (parent context, split
    // sequence, color): every member computes it independently, and a
    // recovery replay that re-derives its splits in the original order
    // rebuilds the same contexts — message tags keep matching.
    std::uint64_t ctx = 1469598103934665603ull;
    ctx = mix_ctx(ctx, ctx_);
    ctx = mix_ctx(ctx, static_cast<std::uint64_t>(split_seq_));
    ctx = mix_ctx(ctx, static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)));
    if (ctx == 0) ctx = 1; // 0 is the world communicator's context

    auto sub = world_->intern_group(ctx, std::move(members), siblings);
    return Comm(*world_, rs_, std::move(sub), my_grank, wrank_, ctx);
}

// ---------------------------------------------------------------------------
// Chunked nonblocking alltoall
// ---------------------------------------------------------------------------

namespace {
/// Tags at and above kCollTagBase are reserved for nonblocking collectives;
/// application point-to-point traffic must stay below it.
constexpr int kCollTagBase = 1 << 20;
constexpr int kCollTagRange = 1 << 19;
} // namespace

std::size_t Ialltoall::slice_offset(std::size_t s) const noexcept {
    const std::size_t units = granule_ ? block_ / granule_ : 0;
    const std::size_t base = nslices_ ? units / nslices_ : 0;
    const std::size_t rem = nslices_ ? units % nslices_ : 0;
    return (s * base + std::min(s, rem)) * granule_;
}

std::size_t Ialltoall::slice_len(std::size_t s) const noexcept {
    const std::size_t units = granule_ ? block_ / granule_ : 0;
    const std::size_t base = nslices_ ? units / nslices_ : 0;
    const std::size_t rem = nslices_ ? units % nslices_ : 0;
    return (base + (s < rem ? 1 : 0)) * granule_;
}

Ialltoall Comm::ialltoall(std::span<double> recv, std::size_t block, std::size_t nslices,
                          std::size_t granule) {
    require("ialltoall");
    const std::size_t p = static_cast<std::size_t>(gsize_);
    if (recv.size() != p * block) throw std::runtime_error("simmpi: ialltoall size mismatch");
    if (granule == 0 || block % granule != 0)
        throw std::runtime_error("simmpi: ialltoall block must divide into granules");
    const std::size_t units = block / granule;
    Ialltoall h;
    h.comm_ = this;
    h.recv_ = recv;
    h.block_ = block;
    h.granule_ = granule;
    h.nslices_ = std::min(std::max<std::size_t>(nslices, 1), std::max<std::size_t>(units, 1));
    h.tag_ = kCollTagBase + coll_seq_;
    coll_seq_ = (coll_seq_ + 1) % kCollTagRange;
    record(CommKind::Alltoall, block * sizeof(double), /*overlapped=*/true);
    trace_instant("ialltoall", CommKind::Alltoall, block * sizeof(double), /*overlapped=*/true);
    if (p > 1) {
        // Post every (peer, slice) receive up front so any arrival order of
        // the peers' sends queues cleanly.
        h.recvs_.resize(h.nslices_ * p);
        for (std::size_t s = 0; s < h.nslices_; ++s) {
            const std::size_t off = h.slice_offset(s);
            const std::size_t len = h.slice_len(s);
            for (std::size_t src = 0; src < p; ++src) {
                if (src == static_cast<std::size_t>(grank_)) continue;
                h.recvs_[s * p + src] =
                    irecv(static_cast<int>(src), h.tag_, recv.subspan(src * block + off, len));
            }
        }
    }
    return h;
}

void Ialltoall::send_slice(std::size_t s, std::span<const double> send) {
    if (!comm_) throw std::runtime_error("simmpi: send_slice on an empty Ialltoall");
    if (s != next_send_ || s >= nslices_)
        throw std::runtime_error("simmpi: ialltoall slices must be sent in ascending order");
    ++next_send_;
    Comm& c = *comm_;
    const std::size_t p = static_cast<std::size_t>(c.gsize_);
    if (send.size() != p * block_)
        throw std::runtime_error("simmpi: ialltoall send size mismatch");
    const std::size_t off = slice_offset(s);
    const std::size_t len = slice_len(s);
    const std::uint32_t span = c.trace_begin("ialltoall.send", CommKind::Alltoall,
                                             len * sizeof(double), /*overlapped=*/true);
    const std::size_t me = static_cast<std::size_t>(c.grank_);
    // The self block bypasses the network.
    std::copy(send.begin() + static_cast<std::ptrdiff_t>(me * block_ + off),
              send.begin() + static_cast<std::ptrdiff_t>(me * block_ + off + len),
              recv_.begin() + static_cast<std::ptrdiff_t>(me * block_ + off));
    if (p == 1) {
        c.trace_end(span);
        return;
    }
    const netsim::NetworkModel& net = c.world_->network();
    // Each peer message carries its share of the blocking collective's cost,
    // so the background total matches what alltoall() would have charged.
    const double share =
        net.alltoall_share_seconds(c.gsize_, block_ * sizeof(double), len * sizeof(double),
                                   static_cast<int>(c.group_->siblings));
    // Staggered peer order (the classic pairwise schedule) so no rank is
    // everyone's first target.
    for (std::size_t d = 1; d < p; ++d) {
        const int dest = static_cast<int>((me + d) % p);
        c.post_background(dest, tag_,
                          send.subspan(static_cast<std::size_t>(dest) * block_ + off, len),
                          share);
    }
    const double overhead = 0.5 * net.latency_us * 1e-6;
    c.rs_->wall += overhead;
    c.rs_->cpu += overhead * net.cpu_poll_fraction;
    c.trace_end(span);
}

void Ialltoall::wait_slice(std::size_t s) {
    if (!comm_) throw std::runtime_error("simmpi: wait_slice on an empty Ialltoall");
    if (s != next_wait_ || s >= nslices_)
        throw std::runtime_error("simmpi: ialltoall slices must be waited in ascending order");
    ++next_wait_;
    Comm& c = *comm_;
    const std::size_t p = static_cast<std::size_t>(c.gsize_);
    const std::uint32_t span = c.trace_begin("ialltoall.wait", CommKind::Alltoall,
                                             slice_len(s) * sizeof(double), /*overlapped=*/true);
    for (std::size_t d = 1; d < p; ++d) {
        const std::size_t src = (static_cast<std::size_t>(c.grank_) + d) % p;
        c.wait(recvs_[s * p + src]);
    }
    c.trace_end(span);
}

void Ialltoall::finish() {
    while (next_wait_ < nslices_) wait_slice(next_wait_);
}

double Comm::sync_and_charge(double coll_seconds) {
    // Per-rank perturbation: a straggler leaves the collective late, so its
    // peers accumulate idle time at the *next* synchronisation point —
    // exactly how a slow node degrades a real cluster.
    const double cost = faulted_cost(coll_seconds);
    const double all = world_->rendezvous_max(*group_, rs_->wall);
    const double idle = all - rs_->wall;
    rs_->wall = all + cost;
    rs_->cpu += (idle + cost) * world_->net_.cpu_poll_fraction;
    return rs_->wall;
}

void Comm::alltoall(std::span<const double> send, std::span<double> recv, std::size_t block) {
    require("alltoall");
    detail::GroupState& g = *group_;
    const std::size_t p = static_cast<std::size_t>(gsize_);
    if (send.size() != p * block || recv.size() != p * block)
        throw std::runtime_error("simmpi: alltoall size mismatch");
    const std::size_t bytes = block * sizeof(double);
    record(CommKind::Alltoall, bytes);
    const std::uint32_t span = trace_begin("alltoall", CommKind::Alltoall, bytes);

    // Stage the data: group rank r owns rows [r*p*block, (r+1)*p*block).
    {
        std::lock_guard lk(g.exch_mtx);
        if (g.exchange.size() < p * p * block) g.exchange.resize(p * p * block);
    }
    world_->rendezvous_max(g, rs_->wall); // everyone sized before anyone writes
    std::copy(send.begin(), send.end(),
              g.exchange.begin() +
                  static_cast<std::ptrdiff_t>(static_cast<std::size_t>(grank_) * p * block));
    world_->rendezvous_max(g, rs_->wall); // writes complete before reads
    for (std::size_t j = 0; j < p; ++j) {
        const double* srcp = g.exchange.data() + (j * p + static_cast<std::size_t>(grank_)) * block;
        std::copy(srcp, srcp + block, recv.begin() + static_cast<std::ptrdiff_t>(j * block));
    }
    sync_and_charge(
        world_->net_.alltoall_seconds(gsize_, bytes, static_cast<int>(g.siblings)));
    trace_end(span);
}

void Comm::allreduce_sum(std::span<double> data) {
    require("allreduce_sum");
    detail::GroupState& g = *group_;
    const std::size_t n = data.size();
    const std::size_t p = static_cast<std::size_t>(gsize_);
    record(CommKind::Allreduce, n * sizeof(double));
    const std::uint32_t span = trace_begin("allreduce", CommKind::Allreduce, n * sizeof(double));
    {
        std::lock_guard lk(g.exch_mtx);
        if (g.exchange.size() < p * n) g.exchange.resize(p * n);
    }
    world_->rendezvous_max(g, rs_->wall);
    std::copy(data.begin(), data.end(),
              g.exchange.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(grank_) * n));
    world_->rendezvous_max(g, rs_->wall);
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t r = 0; r < p; ++r) s += g.exchange[r * n + i];
        data[i] = s;
    }
    sync_and_charge(
        world_->net_.allreduce_seconds(gsize_, n * sizeof(double), static_cast<int>(g.siblings)));
    trace_end(span);
}

double Comm::allreduce_sum(double v) {
    double buf[1] = {v};
    allreduce_sum(std::span<double>(buf, 1));
    return buf[0];
}

double Comm::allreduce_max(double v) {
    require("allreduce_max");
    detail::GroupState& g = *group_;
    const std::size_t p = static_cast<std::size_t>(gsize_);
    record(CommKind::Allreduce, sizeof(double));
    const std::uint32_t span = trace_begin("allreduce", CommKind::Allreduce, sizeof(double));
    {
        std::lock_guard lk(g.exch_mtx);
        if (g.exchange.size() < p) g.exchange.resize(p);
    }
    world_->rendezvous_max(g, rs_->wall);
    g.exchange[static_cast<std::size_t>(grank_)] = v;
    world_->rendezvous_max(g, rs_->wall);
    double m = g.exchange[0];
    for (std::size_t r = 1; r < p; ++r) m = std::max(m, g.exchange[r]);
    sync_and_charge(
        world_->net_.allreduce_seconds(gsize_, sizeof(double), static_cast<int>(g.siblings)));
    trace_end(span);
    return m;
}

double Comm::allreduce_min(double v) { return -allreduce_max(-v); }

void Comm::gather(std::span<const double> send, std::vector<double>& recv, int root) {
    require("gather");
    detail::GroupState& g = *group_;
    const std::size_t n = send.size();
    const std::size_t p = static_cast<std::size_t>(gsize_);
    record(CommKind::Gather, n * sizeof(double));
    const std::uint32_t span = trace_begin("gather", CommKind::Gather, n * sizeof(double));
    {
        std::lock_guard lk(g.exch_mtx);
        if (g.exchange.size() < p * n) g.exchange.resize(p * n);
    }
    world_->rendezvous_max(g, rs_->wall);
    std::copy(send.begin(), send.end(),
              g.exchange.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(grank_) * n));
    world_->rendezvous_max(g, rs_->wall);
    if (grank_ == root) {
        recv.assign(g.exchange.begin(),
                    g.exchange.begin() + static_cast<std::ptrdiff_t>(p * n));
    }
    sync_and_charge(
        world_->net_.gather_seconds(gsize_, n * sizeof(double), static_cast<int>(g.siblings)));
    trace_end(span);
}

void Comm::bcast(std::span<double> data, int root) {
    require("bcast");
    detail::GroupState& g = *group_;
    const std::size_t n = data.size();
    record(CommKind::Bcast, n * sizeof(double));
    const std::uint32_t span = trace_begin("bcast", CommKind::Bcast, n * sizeof(double));
    {
        std::lock_guard lk(g.exch_mtx);
        if (g.exchange.size() < n) g.exchange.resize(n);
    }
    world_->rendezvous_max(g, rs_->wall);
    if (grank_ == root)
        std::copy(data.begin(), data.end(), g.exchange.begin());
    world_->rendezvous_max(g, rs_->wall);
    if (grank_ != root)
        std::copy(g.exchange.begin(),
                  g.exchange.begin() + static_cast<std::ptrdiff_t>(n), data.begin());
    sync_and_charge(
        world_->net_.gather_seconds(gsize_, n * sizeof(double), static_cast<int>(g.siblings)));
    trace_end(span);
}

void Comm::barrier() {
    require("barrier");
    record(CommKind::Barrier, 0);
    const std::uint32_t span = trace_begin("barrier", CommKind::Barrier, 0);
    sync_and_charge(
        world_->net_.barrier_seconds(gsize_, static_cast<int>(group_->siblings)));
    trace_end(span);
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int nprocs, netsim::NetworkModel net, Engine engine)
    : nprocs_(nprocs),
      net_(std::move(net)),
      engine_(engine),
      mailboxes_(static_cast<std::size_t>(nprocs)),
      world_group_(std::make_shared<detail::GroupState>()) {
    if (nprocs < 1) throw std::invalid_argument("simmpi: need at least one rank");
    world_group_->ctx = 0;
    world_group_->members.resize(static_cast<std::size_t>(nprocs));
    std::iota(world_group_->members.begin(), world_group_->members.end(), 0);
}

void World::deliver(int dest, Message msg) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    std::lock_guard lk(box.mtx);
    box.queue.push_back(std::move(msg));
    // Tasks engine: the receiver parked on its mailbox; hand it back to its
    // home worker.  (Lock order box.mtx -> scheduler mutex matches park().)
    if (box.waiting_task >= 0 && sched_ != nullptr) sched_->unpark(box.waiting_task);
    box.cv.notify_all();
}

void World::abort_world() {
    aborted_.store(true);
    if (sched_ != nullptr) sched_->unpark_all();
    world_group_->cv.notify_all();
    {
        std::lock_guard lk(groups_mtx_);
        for (auto& [ctx, g] : groups_) {
            (void)ctx;
            g->cv.notify_all();
        }
    }
    for (auto& box : mailboxes_) box.cv.notify_all();
}

World::Message World::take(int self, int src, std::uint64_t ctx, int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock lk(box.mtx);
    const auto match = [&](const Message& m) {
        return m.src == src && m.ctx == ctx && m.tag == tag;
    };
    if (engine_ == Engine::Tasks) {
        for (;;) {
            const auto it = std::find_if(box.queue.begin(), box.queue.end(), match);
            if (it != box.queue.end()) {
                Message msg = std::move(*it);
                box.queue.erase(it);
                return msg;
            }
            if (aborted_.load()) throw Aborted{};
            // Park this rank's fiber until a delivery (or an abort) wakes it.
            // A missing send is caught by the scheduler's exact quiescence
            // detection, not a timeout.
            box.waiting_task = detail::TaskScheduler::current_task();
            sched_->park(lk);
            box.waiting_task = -1;
        }
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watchdog_seconds_);
    for (;;) {
        const auto it = std::find_if(box.queue.begin(), box.queue.end(), match);
        if (it != box.queue.end()) {
            Message msg = std::move(*it);
            box.queue.erase(it);
            return msg;
        }
        if (aborted_.load()) throw Aborted{};
        if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
            lk.unlock();
            throw DeadlockError("simmpi: rank " + std::to_string(self) +
                                " waited > watchdog for a message from rank " +
                                std::to_string(src) + " tag " + std::to_string(tag) +
                                " (missing send or wrong tag)");
        }
    }
}

bool World::try_take(int self, int src, std::uint64_t ctx, int tag, double wall, Message& out) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::lock_guard lk(box.mtx);
    // Only the first queued (src, ctx, tag) match is eligible: a later
    // message on the same channel never jumps an earlier one, so test()
    // preserves the sender's program order exactly like wait() does.
    const auto it = std::find_if(box.queue.begin(), box.queue.end(), [&](const Message& m) {
        return m.src == src && m.ctx == ctx && m.tag == tag;
    });
    if (it == box.queue.end() || it->avail_time > wall) return false;
    out = std::move(*it);
    box.queue.erase(it);
    return true;
}

double World::rendezvous_max(detail::GroupState& g, double wall) {
    const int n = static_cast<int>(g.members.size());
    if (n <= 1) return wall;
    std::unique_lock lk(g.mtx);
    const std::uint64_t gen = g.generation;
    g.max_wall = std::max(g.max_wall, wall);
    if (++g.waiting == n) {
        g.waiting = 0;
        ++g.generation;
        // max_wall becomes this generation's result; snapshot and clear here
        // so the next generation starts from a clean slot.
        const double result = g.max_wall;
        g.max_wall = 0.0;
        g.result = result;
        if (engine_ == Engine::Tasks) {
            for (const int t : g.parked) sched_->unpark(t);
            g.parked.clear();
        }
        g.cv.notify_all();
        return result;
    }
    if (engine_ == Engine::Tasks) {
        while (g.generation == gen) {
            if (aborted_.load()) throw Aborted{};
            g.parked.push_back(detail::TaskScheduler::current_task());
            sched_->park(lk);
        }
        return g.result;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watchdog_seconds_);
    while (g.generation == gen) {
        if (aborted_.load()) throw Aborted{};
        if (g.cv.wait_until(lk, deadline) == std::cv_status::timeout && g.generation == gen) {
            lk.unlock();
            throw DeadlockError(
                "simmpi: collective rendezvous waited > watchdog "
                "(some rank never entered the collective)");
        }
    }
    return g.result;
}

std::shared_ptr<detail::GroupState> World::intern_group(std::uint64_t ctx,
                                                        std::vector<int> members,
                                                        std::uint32_t siblings) {
    std::lock_guard lk(groups_mtx_);
    auto& slot = groups_[ctx];
    if (!slot) {
        slot = std::make_shared<detail::GroupState>();
        slot->ctx = ctx;
        slot->members = std::move(members);
        slot->siblings = siblings;
    } else if (slot->members != members || slot->siblings != siblings) {
        // Two distinct groups hashing to one context would cross-match
        // messages silently; fail loudly instead (astronomically unlikely).
        throw std::logic_error("simmpi: split() communicator context collision");
    }
    return slot;
}

std::vector<RankReport> World::run(const std::function<void(Comm&)>& fn) {
    if (engine_ == Engine::Tasks && nprocs_ > max_tasks_)
        throw OversubscriptionError(
            "simmpi: " + std::to_string(nprocs_) +
            " ranks exceed the task scheduler's configured limit of " +
            std::to_string(max_tasks_) +
            " tasks; raise it with World::set_max_tasks() or shrink the world");
    constexpr int kMaxThreadRanks = 1024;
    if (engine_ == Engine::Threads && nprocs_ > kMaxThreadRanks)
        throw OversubscriptionError("simmpi: " + std::to_string(nprocs_) + " ranks exceed the " +
                                    std::to_string(kMaxThreadRanks) +
                                    "-thread ceiling of Engine::Threads; use Engine::Tasks");

    std::vector<detail::RankState> states(static_cast<std::size_t>(nprocs_));
    std::vector<RankReport> reports(static_cast<std::size_t>(nprocs_));
    std::mutex err_mtx;
    std::exception_ptr first_error;
    std::exception_ptr kill_error;
    bool deadlocked = false;

    const auto body = [&](int r) {
        Comm comm(*this, &states[static_cast<std::size_t>(r)], world_group_, r, r, /*ctx=*/0);
        try {
            fn(comm);
            comm.check_no_pending();
        } catch (const Aborted&) {
            // Woken by another rank's failure; unwind quietly.
        } catch (const RankKilledError&) {
            // A fault-model node death.  Keep it separate from the generic
            // first_error slot: under host-scheduling races a peer's
            // DeadlockError can land first, but the kill is the root cause
            // and is what run() must surface.
            {
                std::lock_guard lk(err_mtx);
                if (!kill_error) kill_error = std::current_exception();
            }
            abort_world();
        } catch (...) {
            {
                std::lock_guard lk(err_mtx);
                if (!first_error) first_error = std::current_exception();
            }
            // Release every rank still blocked in take()/rendezvous so
            // run() can finish and rethrow instead of hanging.
            abort_world();
        }
        RankReport& rep = reports[static_cast<std::size_t>(r)];
        rep.rank = r;
        rep.cpu_seconds = comm.cpu_time();
        rep.wall_seconds = comm.wall_time();
        rep.log = comm.log();
        rep.fault_log = comm.fault_log();
        rep.overlap_log = comm.overlap_log();
    };

    if (engine_ == Engine::Tasks) {
        detail::TaskScheduler sched(nprocs_, stack_bytes_);
        sched.set_stall_handler([&] {
            // Exact quiescence: no rank runnable, some still parked.  Flag
            // it and abort; the scheduler then wakes every parked rank so it
            // observes the abort and unwinds.
            {
                std::lock_guard lk(err_mtx);
                deadlocked = true;
            }
            abort_world();
        });
        sched_ = &sched;
        try {
            sched.run(body);
        } catch (...) {
            sched_ = nullptr;
            throw;
        }
        sched_ = nullptr;
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(nprocs_));
        for (int r = 0; r < nprocs_; ++r) threads.emplace_back([&body, r] { body(r); });
        for (auto& t : threads) t.join();
    }

    if (kill_error || first_error || deadlocked) {
        // Scrub the half-finished run so the world is reusable: drop stale
        // messages and rewind the rendezvous (deserters left `waiting` high).
        // A recovery harness relies on this to roll back and replay on the
        // same World after a kill.
        aborted_.store(false);
        for (auto& box : mailboxes_) {
            box.queue.clear();
            box.waiting_task = -1;
        }
        const auto scrub = [](detail::GroupState& g) {
            g.waiting = 0;
            g.max_wall = 0.0;
            g.parked.clear();
        };
        scrub(*world_group_);
        {
            std::lock_guard lk(groups_mtx_);
            for (auto& [ctx, g] : groups_) {
                (void)ctx;
                scrub(*g);
            }
            groups_.clear();
        }
        if (kill_error) std::rethrow_exception(kill_error);
        if (first_error) std::rethrow_exception(first_error);
        throw DeadlockError(
            "simmpi: deadlock detected — no rank is runnable and at least one is still blocked "
            "(missing send, wrong tag, or a collective some rank never entered)");
    }
    // Split-derived groups do not outlive the run: a recovery replay
    // re-derives them (same contexts) from scratch.
    {
        std::lock_guard lk(groups_mtx_);
        groups_.clear();
    }
    return reports;
}

} // namespace simmpi
