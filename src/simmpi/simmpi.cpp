#include "simmpi/simmpi.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>

namespace simmpi {

std::string to_string(CommKind k) {
    switch (k) {
        case CommKind::Ptp: return "ptp";
        case CommKind::Alltoall: return "alltoall";
        case CommKind::Allreduce: return "allreduce";
        case CommKind::Gather: return "gather";
        case CommKind::Bcast: return "bcast";
        case CommKind::Barrier: return "barrier";
    }
    return "?";
}

namespace {

double event_seconds(const CommEventKey& key, const netsim::NetworkModel& net, int nprocs) {
    switch (key.kind) {
        case CommKind::Ptp: return net.ptp_seconds(key.bytes);
        case CommKind::Alltoall: return net.alltoall_seconds(nprocs, key.bytes);
        case CommKind::Allreduce: return net.allreduce_seconds(nprocs, key.bytes);
        case CommKind::Gather:
        case CommKind::Bcast: return net.gather_seconds(nprocs, key.bytes);
        case CommKind::Barrier: return net.barrier_seconds(nprocs);
    }
    return 0.0;
}

} // namespace

double price_stage(const CommLog& log, int stage, const netsim::NetworkModel& net, int nprocs) {
    const auto it = log.find(stage);
    if (it == log.end()) return 0.0;
    double t = 0.0;
    for (const auto& [key, count] : it->second)
        t += static_cast<double>(count) * event_seconds(key, net, nprocs);
    return t;
}

double price_log(const CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    double t = 0.0;
    for (const auto& [stage, events] : log) {
        (void)events;
        t += price_stage(log, stage, net, nprocs);
    }
    return t;
}

SplitSeconds price_stage_split(const CommLog& log, int stage, const netsim::NetworkModel& net,
                               int nprocs) {
    SplitSeconds out;
    const auto it = log.find(stage);
    if (it == log.end()) return out;
    for (const auto& [key, count] : it->second) {
        const double t = static_cast<double>(count) * event_seconds(key, net, nprocs);
        (key.overlapped ? out.overlapped : out.blocking) += t;
    }
    return out;
}

SplitSeconds price_log_split(const CommLog& log, const netsim::NetworkModel& net, int nprocs) {
    SplitSeconds out;
    for (const auto& [stage, events] : log) {
        (void)events;
        const SplitSeconds s = price_stage_split(log, stage, net, nprocs);
        out.blocking += s.blocking;
        out.overlapped += s.overlapped;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

void Comm::advance_compute(double seconds) noexcept {
    cpu_ += seconds;
    wall_ += seconds;
}

namespace {

/// Preformatted trace_event argument fragment for one comm op.  Interning
/// dedups: a run touches few distinct (kind, bytes) pairs.
std::uint32_t comm_args(CommKind kind, std::size_t bytes, bool overlapped) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"kind\":\"%s\",\"bytes\":%zu,\"overlapped\":%s",
                  to_string(kind).c_str(), bytes, overlapped ? "true" : "false");
    return obs::tracer().intern(buf);
}

} // namespace

std::uint32_t Comm::trace_begin(const char* name, CommKind kind, std::size_t bytes,
                                bool overlapped) {
    if (!obs::active()) return 0;
    obs::Tracer& tr = obs::tracer();
    if (trace_lane_ == nullptr) trace_lane_ = tr.lane("rank " + std::to_string(rank_));
    const std::uint32_t id = tr.intern(name);
    tr.begin(trace_lane_, id, wall_, /*virtual_time=*/true, comm_args(kind, bytes, overlapped));
    return id;
}

void Comm::trace_end(std::uint32_t name_id) {
    if (name_id == 0 || !obs::active() || trace_lane_ == nullptr) return;
    obs::tracer().end(trace_lane_, name_id, wall_, /*virtual_time=*/true);
}

void Comm::trace_instant(const char* name, CommKind kind, std::size_t bytes, bool overlapped) {
    if (!obs::active()) return;
    obs::Tracer& tr = obs::tracer();
    if (trace_lane_ == nullptr) trace_lane_ = tr.lane("rank " + std::to_string(rank_));
    tr.instant(trace_lane_, tr.intern(name), wall_, /*virtual_time=*/true,
               comm_args(kind, bytes, overlapped));
}

void Comm::trace_counter(const char* name, double value) {
    if (!obs::active()) return;
    obs::Tracer& tr = obs::tracer();
    if (trace_lane_ == nullptr) trace_lane_ = tr.lane("rank " + std::to_string(rank_));
    tr.counter(trace_lane_, tr.intern(name), wall_, value, /*virtual_time=*/true);
}

double Comm::faulted_cost(double base_seconds) {
    const netsim::FaultModel& fm = world_->net_.fault;
    // The kill event fires *before* the event index is consumed, so a replay
    // restored to an earlier msg_index walks through the same position again
    // (and dies again unless the kill has been disarmed).
    if (fm.should_kill(rank_, msg_index_)) throw RankKilledError(rank_, msg_index_, wall_);
    const std::uint64_t idx = msg_index_++;
    if (!fm.enabled()) return base_seconds;
    const netsim::FaultPerturbation p = fm.perturb(rank_, idx, base_seconds);
    const double cost = (base_seconds + p.extra_seconds) * fm.rank_slowdown(rank_);
    FaultStageStats& fs = fault_log_[stage_];
    fs.retransmits += static_cast<std::uint64_t>(p.retransmits);
    fs.extra_seconds += cost - base_seconds;
    if (p.retransmits > 0) trace_counter("fault.retransmits", static_cast<double>(p.retransmits));
    if (cost != base_seconds) trace_counter("fault.extra_s", cost - base_seconds);
    return cost;
}

void Comm::send(int dest, int tag, std::span<const double> data) {
    assert(dest >= 0 && dest < size_ && dest != rank_);
    const std::size_t bytes = data.size_bytes();
    const std::uint32_t span = trace_begin("send", CommKind::Ptp, bytes);
    World::Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.payload.assign(data.begin(), data.end());
    msg.avail_time = wall_ + faulted_cost(world_->net_.ptp_seconds(bytes));
    record(CommKind::Ptp, bytes);
    // The sender returns to work after the injection overhead; the transfer
    // itself (with any retransmits/jitter) lands on the receiver's clock.
    const double overhead = 0.5 * world_->net_.latency_us * 1e-6;
    wall_ += overhead;
    cpu_ += overhead * world_->net_.cpu_poll_fraction;
    world_->deliver(dest, std::move(msg));
    trace_end(span);
}

void Comm::recv(int src, int tag, std::span<double> data) {
    const std::uint32_t span = trace_begin("recv", CommKind::Ptp, data.size_bytes());
    World::Message msg = world_->take(rank_, src, tag);
    if (msg.payload.size() != data.size())
        throw std::runtime_error("simmpi: recv size mismatch");
    std::copy(msg.payload.begin(), msg.payload.end(), data.begin());
    const double before = wall_;
    wall_ = std::max(wall_, msg.avail_time);
    // TCP stacks block (pure idle); polling stacks burn CPU while waiting.
    cpu_ += (wall_ - before) * world_->net_.cpu_poll_fraction;
    trace_end(span);
}

void Comm::sendrecv(int partner, int tag, std::span<const double> send_data,
                    std::span<double> recv_data) {
    // send() is buffered (deposits into the partner's mailbox), so the
    // send-then-recv order cannot deadlock.
    send(partner, tag, send_data);
    recv(partner, tag, recv_data);
}

// ---------------------------------------------------------------------------
// Nonblocking point-to-point
// ---------------------------------------------------------------------------

void Comm::post_background(int dest, int tag, std::span<const double> data, double base_cost) {
    World::Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.payload.assign(data.begin(), data.end());
    const double cost = faulted_cost(base_cost);
    // Posted transfers queue on this rank's NIC: a burst of isends costs
    // what serialized transfers cost, it just accrues while the rank works.
    const double start = std::max(wall_, nic_busy_);
    msg.avail_time = start + cost;
    msg.cost = cost;
    nic_busy_ = msg.avail_time;
    world_->deliver(dest, std::move(msg));
}

Request Comm::isend(int dest, int tag, std::span<const double> data) {
    assert(dest >= 0 && dest < size_ && dest != rank_);
    const std::size_t bytes = data.size_bytes();
    record(CommKind::Ptp, bytes, /*overlapped=*/true);
    trace_instant("isend", CommKind::Ptp, bytes, /*overlapped=*/true);
    post_background(dest, tag, data, world_->net_.ptp_seconds(bytes));
    // The sender pays the same injection overhead as a blocking send; the
    // payload is buffered, so the request is complete at once.
    const double overhead = 0.5 * world_->net_.latency_us * 1e-6;
    wall_ += overhead;
    cpu_ += overhead * world_->net_.cpu_poll_fraction;
    Request r;
    r.kind_ = Request::Kind::Send;
    r.done_ = true;
    r.peer_ = dest;
    r.tag_ = tag;
    return r;
}

Request Comm::irecv(int src, int tag, std::span<double> data) {
    assert(src >= 0 && src < size_ && src != rank_);
    Request r;
    r.kind_ = Request::Kind::Recv;
    r.peer_ = src;
    r.tag_ = tag;
    r.buf_ = data;
    r.post_wall_ = wall_;
    ++pending_recvs_;
    return r;
}

void Comm::absorb(Request& r, detail::Message&& msg) {
    if (msg.payload.size() != r.buf_.size())
        throw std::runtime_error("simmpi: irecv size mismatch");
    assert(r.post_wall_ <= wall_);
    std::copy(msg.payload.begin(), msg.payload.end(), r.buf_.begin());
    const double before = wall_;
    wall_ = std::max(wall_, msg.avail_time);
    const double idle = wall_ - before;
    cpu_ += idle * world_->net_.cpu_poll_fraction;
    // Whatever part of the background transfer did not surface as idle was
    // hidden under this rank's own work since the post: that is the
    // "overlapped comm" the application tables report.
    const double hidden = std::max(0.0, msg.cost - idle);
    overlap_log_[stage_] += hidden;
    if (hidden > 0.0) trace_counter("overlap.hidden_s", hidden);
    r.done_ = true;
    --pending_recvs_;
}

void Comm::wait(Request& r) {
    if (!r.valid()) throw std::runtime_error("simmpi: wait on an empty Request");
    if (r.done_) return;
    const std::uint32_t span =
        trace_begin("wait", CommKind::Ptp, r.buf_.size_bytes(), /*overlapped=*/true);
    absorb(r, world_->take(rank_, r.peer_, r.tag_));
    trace_end(span);
}

void Comm::waitall(std::span<Request> rs) {
    for (Request& r : rs)
        if (r.valid()) wait(r);
}

bool Comm::test(Request& r) {
    if (!r.valid()) throw std::runtime_error("simmpi: test on an empty Request");
    if (r.done_) return true;
    World::Message msg;
    if (!world_->try_take(rank_, r.peer_, r.tag_, wall_, msg)) return false;
    const std::uint32_t span =
        trace_begin("wait", CommKind::Ptp, r.buf_.size_bytes(), /*overlapped=*/true);
    absorb(r, std::move(msg));
    trace_end(span);
    return true;
}

void Comm::check_no_pending() const {
    if (pending_recvs_ != 0)
        throw std::runtime_error("simmpi: rank " + std::to_string(rank_) + " finished with " +
                                 std::to_string(pending_recvs_) +
                                 " pending nonblocking request(s) never waited on");
}

// ---------------------------------------------------------------------------
// Checkpointable rank state
// ---------------------------------------------------------------------------

void Comm::save_state(ckpt::SectionWriter& w) const {
    if (pending_recvs_ != 0)
        throw std::logic_error("simmpi: checkpoint with " + std::to_string(pending_recvs_) +
                               " pending nonblocking request(s); checkpoint between steps");
    w.f64(cpu_);
    w.f64(wall_);
    w.f64(nic_busy_);
    w.u64(msg_index_);
    w.i64(coll_seq_);
    w.i64(stage_);
    w.u64(log_.size());
    for (const auto& [stage, events] : log_) {
        w.i64(stage);
        w.u64(events.size());
        for (const auto& [key, count] : events) {
            w.u32(static_cast<std::uint32_t>(key.kind));
            w.u64(key.bytes);
            w.u32(key.overlapped ? 1 : 0);
            w.u64(count);
        }
    }
    w.u64(fault_log_.size());
    for (const auto& [stage, fs] : fault_log_) {
        w.i64(stage);
        w.u64(fs.retransmits);
        w.f64(fs.extra_seconds);
    }
    w.u64(overlap_log_.size());
    for (const auto& [stage, hidden] : overlap_log_) {
        w.i64(stage);
        w.f64(hidden);
    }
}

void Comm::restore_state(ckpt::SectionReader& r) {
    cpu_ = r.f64();
    wall_ = r.f64();
    nic_busy_ = r.f64();
    msg_index_ = r.u64();
    coll_seq_ = static_cast<int>(r.i64());
    stage_ = static_cast<int>(r.i64());
    log_.clear();
    for (std::uint64_t i = 0, nstages = r.u64(); i < nstages; ++i) {
        const int stage = static_cast<int>(r.i64());
        auto& events = log_[stage];
        for (std::uint64_t j = 0, nkeys = r.u64(); j < nkeys; ++j) {
            CommEventKey key;
            const std::uint32_t kind = r.u32();
            if (kind > static_cast<std::uint32_t>(CommKind::Barrier))
                r.fail("comm event kind " + std::to_string(kind) + " out of range");
            key.kind = static_cast<CommKind>(kind);
            key.bytes = static_cast<std::size_t>(r.u64());
            key.overlapped = r.u32() != 0;
            events[key] = r.u64();
        }
    }
    fault_log_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        const int stage = static_cast<int>(r.i64());
        FaultStageStats& fs = fault_log_[stage];
        fs.retransmits = r.u64();
        fs.extra_seconds = r.f64();
    }
    overlap_log_.clear();
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
        const int stage = static_cast<int>(r.i64());
        overlap_log_[stage] = r.f64();
    }
    r.expect_end();
}

// ---------------------------------------------------------------------------
// Chunked nonblocking alltoall
// ---------------------------------------------------------------------------

namespace {
/// Tags at and above kCollTagBase are reserved for nonblocking collectives;
/// application point-to-point traffic must stay below it.
constexpr int kCollTagBase = 1 << 20;
constexpr int kCollTagRange = 1 << 19;
} // namespace

std::size_t Ialltoall::slice_offset(std::size_t s) const noexcept {
    const std::size_t units = granule_ ? block_ / granule_ : 0;
    const std::size_t base = nslices_ ? units / nslices_ : 0;
    const std::size_t rem = nslices_ ? units % nslices_ : 0;
    return (s * base + std::min(s, rem)) * granule_;
}

std::size_t Ialltoall::slice_len(std::size_t s) const noexcept {
    const std::size_t units = granule_ ? block_ / granule_ : 0;
    const std::size_t base = nslices_ ? units / nslices_ : 0;
    const std::size_t rem = nslices_ ? units % nslices_ : 0;
    return (base + (s < rem ? 1 : 0)) * granule_;
}

Ialltoall Comm::ialltoall(std::span<double> recv, std::size_t block, std::size_t nslices,
                          std::size_t granule) {
    const std::size_t p = static_cast<std::size_t>(size_);
    if (recv.size() != p * block) throw std::runtime_error("simmpi: ialltoall size mismatch");
    if (granule == 0 || block % granule != 0)
        throw std::runtime_error("simmpi: ialltoall block must divide into granules");
    const std::size_t units = block / granule;
    Ialltoall h;
    h.comm_ = this;
    h.recv_ = recv;
    h.block_ = block;
    h.granule_ = granule;
    h.nslices_ = std::min(std::max<std::size_t>(nslices, 1), std::max<std::size_t>(units, 1));
    h.tag_ = kCollTagBase + coll_seq_;
    coll_seq_ = (coll_seq_ + 1) % kCollTagRange;
    record(CommKind::Alltoall, block * sizeof(double), /*overlapped=*/true);
    trace_instant("ialltoall", CommKind::Alltoall, block * sizeof(double), /*overlapped=*/true);
    if (p > 1) {
        // Post every (peer, slice) receive up front so any arrival order of
        // the peers' sends queues cleanly.
        h.recvs_.resize(h.nslices_ * p);
        for (std::size_t s = 0; s < h.nslices_; ++s) {
            const std::size_t off = h.slice_offset(s);
            const std::size_t len = h.slice_len(s);
            for (std::size_t src = 0; src < p; ++src) {
                if (src == static_cast<std::size_t>(rank_)) continue;
                h.recvs_[s * p + src] =
                    irecv(static_cast<int>(src), h.tag_, recv.subspan(src * block + off, len));
            }
        }
    }
    return h;
}

void Ialltoall::send_slice(std::size_t s, std::span<const double> send) {
    if (!comm_) throw std::runtime_error("simmpi: send_slice on an empty Ialltoall");
    if (s != next_send_ || s >= nslices_)
        throw std::runtime_error("simmpi: ialltoall slices must be sent in ascending order");
    ++next_send_;
    Comm& c = *comm_;
    const std::size_t p = static_cast<std::size_t>(c.size_);
    if (send.size() != p * block_)
        throw std::runtime_error("simmpi: ialltoall send size mismatch");
    const std::size_t off = slice_offset(s);
    const std::size_t len = slice_len(s);
    const std::uint32_t span = c.trace_begin("ialltoall.send", CommKind::Alltoall,
                                             len * sizeof(double), /*overlapped=*/true);
    const std::size_t me = static_cast<std::size_t>(c.rank_);
    // The self block bypasses the network.
    std::copy(send.begin() + static_cast<std::ptrdiff_t>(me * block_ + off),
              send.begin() + static_cast<std::ptrdiff_t>(me * block_ + off + len),
              recv_.begin() + static_cast<std::ptrdiff_t>(me * block_ + off));
    if (p == 1) {
        c.trace_end(span);
        return;
    }
    const netsim::NetworkModel& net = c.world_->network();
    // Each peer message carries its share of the blocking collective's cost,
    // so the background total matches what alltoall() would have charged.
    const double share =
        net.alltoall_share_seconds(c.size_, block_ * sizeof(double), len * sizeof(double));
    // Staggered peer order (the classic pairwise schedule) so no rank is
    // everyone's first target.
    for (std::size_t d = 1; d < p; ++d) {
        const int dest = static_cast<int>((me + d) % p);
        c.post_background(dest, tag_,
                          send.subspan(static_cast<std::size_t>(dest) * block_ + off, len),
                          share);
    }
    const double overhead = 0.5 * net.latency_us * 1e-6;
    c.wall_ += overhead;
    c.cpu_ += overhead * net.cpu_poll_fraction;
    c.trace_end(span);
}

void Ialltoall::wait_slice(std::size_t s) {
    if (!comm_) throw std::runtime_error("simmpi: wait_slice on an empty Ialltoall");
    if (s != next_wait_ || s >= nslices_)
        throw std::runtime_error("simmpi: ialltoall slices must be waited in ascending order");
    ++next_wait_;
    Comm& c = *comm_;
    const std::size_t p = static_cast<std::size_t>(c.size_);
    const std::uint32_t span = c.trace_begin("ialltoall.wait", CommKind::Alltoall,
                                             slice_len(s) * sizeof(double), /*overlapped=*/true);
    for (std::size_t d = 1; d < p; ++d) {
        const std::size_t src = (static_cast<std::size_t>(c.rank_) + d) % p;
        c.wait(recvs_[s * p + src]);
    }
    c.trace_end(span);
}

void Ialltoall::finish() {
    while (next_wait_ < nslices_) wait_slice(next_wait_);
}

double Comm::sync_and_charge(double coll_seconds) {
    // Per-rank perturbation: a straggler leaves the collective late, so its
    // peers accumulate idle time at the *next* synchronisation point —
    // exactly how a slow node degrades a real cluster.
    const double cost = faulted_cost(coll_seconds);
    const double all = world_->rendezvous_max(wall_);
    const double idle = all - wall_;
    wall_ = all + cost;
    cpu_ += (idle + cost) * world_->net_.cpu_poll_fraction;
    return wall_;
}

void Comm::alltoall(std::span<const double> send, std::span<double> recv, std::size_t block) {
    const std::size_t p = static_cast<std::size_t>(size_);
    if (send.size() != p * block || recv.size() != p * block)
        throw std::runtime_error("simmpi: alltoall size mismatch");
    const std::size_t bytes = block * sizeof(double);
    record(CommKind::Alltoall, bytes);
    const std::uint32_t span = trace_begin("alltoall", CommKind::Alltoall, bytes);

    // Stage the data: rank r owns rows [r*p*block, (r+1)*p*block).
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p * p * block) world_->exchange_.resize(p * p * block);
    }
    world_->rendezvous_max(wall_); // everyone sized before anyone writes
    std::copy(send.begin(), send.end(),
              world_->exchange_.begin() + static_cast<std::ptrdiff_t>(rank_ * p * block));
    world_->rendezvous_max(wall_); // writes complete before reads
    for (std::size_t j = 0; j < p; ++j) {
        const double* srcp = world_->exchange_.data() + (j * p + rank_) * block;
        std::copy(srcp, srcp + block, recv.begin() + static_cast<std::ptrdiff_t>(j * block));
    }
    sync_and_charge(world_->net_.alltoall_seconds(size_, bytes));
    trace_end(span);
}

void Comm::allreduce_sum(std::span<double> data) {
    const std::size_t n = data.size();
    const std::size_t p = static_cast<std::size_t>(size_);
    record(CommKind::Allreduce, n * sizeof(double));
    const std::uint32_t span = trace_begin("allreduce", CommKind::Allreduce, n * sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p * n) world_->exchange_.resize(p * n);
    }
    world_->rendezvous_max(wall_);
    std::copy(data.begin(), data.end(),
              world_->exchange_.begin() + static_cast<std::ptrdiff_t>(rank_ * n));
    world_->rendezvous_max(wall_);
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t r = 0; r < p; ++r) s += world_->exchange_[r * n + i];
        data[i] = s;
    }
    sync_and_charge(world_->net_.allreduce_seconds(size_, n * sizeof(double)));
    trace_end(span);
}

double Comm::allreduce_sum(double v) {
    double buf[1] = {v};
    allreduce_sum(std::span<double>(buf, 1));
    return buf[0];
}

double Comm::allreduce_max(double v) {
    const std::size_t p = static_cast<std::size_t>(size_);
    record(CommKind::Allreduce, sizeof(double));
    const std::uint32_t span = trace_begin("allreduce", CommKind::Allreduce, sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p) world_->exchange_.resize(p);
    }
    world_->rendezvous_max(wall_);
    world_->exchange_[static_cast<std::size_t>(rank_)] = v;
    world_->rendezvous_max(wall_);
    double m = world_->exchange_[0];
    for (std::size_t r = 1; r < p; ++r) m = std::max(m, world_->exchange_[r]);
    sync_and_charge(world_->net_.allreduce_seconds(size_, sizeof(double)));
    trace_end(span);
    return m;
}

double Comm::allreduce_min(double v) { return -allreduce_max(-v); }

void Comm::gather(std::span<const double> send, std::vector<double>& recv, int root) {
    const std::size_t n = send.size();
    const std::size_t p = static_cast<std::size_t>(size_);
    record(CommKind::Gather, n * sizeof(double));
    const std::uint32_t span = trace_begin("gather", CommKind::Gather, n * sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < p * n) world_->exchange_.resize(p * n);
    }
    world_->rendezvous_max(wall_);
    std::copy(send.begin(), send.end(),
              world_->exchange_.begin() + static_cast<std::ptrdiff_t>(rank_ * n));
    world_->rendezvous_max(wall_);
    if (rank_ == root) {
        recv.assign(world_->exchange_.begin(),
                    world_->exchange_.begin() + static_cast<std::ptrdiff_t>(p * n));
    }
    sync_and_charge(world_->net_.gather_seconds(size_, n * sizeof(double)));
    trace_end(span);
}

void Comm::bcast(std::span<double> data, int root) {
    const std::size_t n = data.size();
    record(CommKind::Bcast, n * sizeof(double));
    const std::uint32_t span = trace_begin("bcast", CommKind::Bcast, n * sizeof(double));
    {
        std::lock_guard lk(world_->exch_mtx_);
        if (world_->exchange_.size() < n) world_->exchange_.resize(n);
    }
    world_->rendezvous_max(wall_);
    if (rank_ == root)
        std::copy(data.begin(), data.end(), world_->exchange_.begin());
    world_->rendezvous_max(wall_);
    if (rank_ != root)
        std::copy(world_->exchange_.begin(),
                  world_->exchange_.begin() + static_cast<std::ptrdiff_t>(n), data.begin());
    sync_and_charge(world_->net_.gather_seconds(size_, n * sizeof(double)));
    trace_end(span);
}

void Comm::barrier() {
    record(CommKind::Barrier, 0);
    const std::uint32_t span = trace_begin("barrier", CommKind::Barrier, 0);
    sync_and_charge(world_->net_.barrier_seconds(size_));
    trace_end(span);
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

World::World(int nprocs, netsim::NetworkModel net)
    : nprocs_(nprocs), net_(std::move(net)), mailboxes_(static_cast<std::size_t>(nprocs)) {
    if (nprocs < 1) throw std::invalid_argument("simmpi: need at least one rank");
}

void World::deliver(int dest, Message msg) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
        std::lock_guard lk(box.mtx);
        box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
}

void World::abort_world() {
    aborted_.store(true);
    rdv_.cv.notify_all();
    for (auto& box : mailboxes_) box.cv.notify_all();
}

World::Message World::take(int self, int src, int tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watchdog_seconds_);
    std::unique_lock lk(box.mtx);
    for (;;) {
        const auto it = std::find_if(box.queue.begin(), box.queue.end(), [&](const Message& m) {
            return m.src == src && m.tag == tag;
        });
        if (it != box.queue.end()) {
            Message msg = std::move(*it);
            box.queue.erase(it);
            return msg;
        }
        if (aborted_.load()) throw Aborted{};
        if (box.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
            lk.unlock();
            throw DeadlockError("simmpi: rank " + std::to_string(self) +
                                " waited > watchdog for a message from rank " +
                                std::to_string(src) + " tag " + std::to_string(tag) +
                                " (missing send or wrong tag)");
        }
    }
}

bool World::try_take(int self, int src, int tag, double wall, Message& out) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::lock_guard lk(box.mtx);
    // Only the first queued (src, tag) match is eligible: a later message on
    // the same channel never jumps an earlier one, so test() preserves the
    // sender's program order exactly like wait() does.
    const auto it = std::find_if(box.queue.begin(), box.queue.end(), [&](const Message& m) {
        return m.src == src && m.tag == tag;
    });
    if (it == box.queue.end() || it->avail_time > wall) return false;
    out = std::move(*it);
    box.queue.erase(it);
    return true;
}

double World::rendezvous_max(double wall) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(watchdog_seconds_);
    std::unique_lock lk(rdv_.mtx);
    const std::uint64_t gen = rdv_.generation;
    rdv_.max_wall = std::max(rdv_.max_wall, wall);
    if (++rdv_.waiting == nprocs_) {
        rdv_.waiting = 0;
        ++rdv_.generation;
        // max_wall becomes this generation's result; reset happens lazily by
        // the first arriver of the next generation reading-then-maxing is
        // wrong, so snapshot and clear here.
        const double result = rdv_.max_wall;
        rdv_.max_wall = 0.0;
        rdv_.result_ = result;
        rdv_.cv.notify_all();
        return result;
    }
    while (rdv_.generation == gen) {
        if (aborted_.load()) throw Aborted{};
        if (rdv_.cv.wait_until(lk, deadline) == std::cv_status::timeout &&
            rdv_.generation == gen) {
            lk.unlock();
            throw DeadlockError(
                "simmpi: collective rendezvous waited > watchdog "
                "(some rank never entered the collective)");
        }
    }
    return rdv_.result_;
}

std::vector<RankReport> World::run(const std::function<void(Comm&)>& fn) {
    std::vector<RankReport> reports(static_cast<std::size_t>(nprocs_));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs_));
    std::mutex err_mtx;
    std::exception_ptr first_error;
    std::exception_ptr kill_error;

    for (int r = 0; r < nprocs_; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(*this, r, nprocs_);
            try {
                fn(comm);
                comm.check_no_pending();
            } catch (const Aborted&) {
                // Woken by another rank's failure; unwind quietly.
            } catch (const RankKilledError&) {
                // A fault-model node death.  Keep it separate from the
                // generic first_error slot: under host-scheduling races a
                // peer's watchdog DeadlockError can land first, but the kill
                // is the root cause and is what run() must surface.
                {
                    std::lock_guard lk(err_mtx);
                    if (!kill_error) kill_error = std::current_exception();
                }
                abort_world();
            } catch (...) {
                {
                    std::lock_guard lk(err_mtx);
                    if (!first_error) first_error = std::current_exception();
                }
                // Release every rank still blocked in take()/rendezvous so
                // run() can join and rethrow instead of hanging.
                abort_world();
            }
            RankReport& rep = reports[static_cast<std::size_t>(r)];
            rep.rank = r;
            rep.cpu_seconds = comm.cpu_time();
            rep.wall_seconds = comm.wall_time();
            rep.log = comm.log();
            rep.fault_log = comm.fault_log();
            rep.overlap_log = comm.overlap_log();
        });
    }
    for (auto& t : threads) t.join();
    if (kill_error || first_error) {
        // Scrub the half-finished run so the world is reusable: drop stale
        // messages and rewind the rendezvous (deserters left `waiting` high).
        // A recovery harness relies on this to roll back and replay on the
        // same World after a kill.
        aborted_.store(false);
        for (auto& box : mailboxes_) box.queue.clear();
        rdv_.waiting = 0;
        rdv_.max_wall = 0.0;
        std::rethrow_exception(kill_error ? kill_error : first_error);
    }
    return reports;
}

} // namespace simmpi
