#pragma once

#include <cstddef>
#include <functional>
#include <mutex>

/// \file scheduler.hpp
/// Run-to-completion fiber tasks multiplexed over the deterministic host
/// thread pool — the engine that lets simmpi scale past "one OS thread per
/// rank".
///
/// Each task is a ucontext fiber with its own guard-paged stack.  A task
/// runs until it parks (a blocking recv or collective rendezvous with no
/// matching event yet), at which point the worker saves its context and
/// picks up another task; unpark() makes it runnable again.  Two invariants
/// make the multiplexing invisible to the code running on top:
///
///   * Continuation affinity — once a fiber has started on an OS thread it
///     always resumes on that same thread.  The blaslite op counters and
///     the perf StageScope deltas are thread_local; migrating a fiber
///     mid-scope would corrupt the per-rank operation counts the machine
///     models price.
///   * Fiber-local op counters — the blaslite counter struct is swapped on
///     every switch, so a task parked mid-StageScope never sees the ops of
///     the tasks that ran on its worker meanwhile.
///
/// Deadlock detection is exact rather than timeout-based: every wake source
/// is itself a task, so "no task is runnable and at least one is parked"
/// is a proven deadlock.  The scheduler then invokes the stall handler
/// (simmpi::World aborts the world) and wakes every parked task so it can
/// observe the abort and unwind.
namespace simmpi::detail {

class TaskScheduler {
public:
    /// Prepares `ntasks` fibers of `stack_bytes` each (allocated lazily, one
    /// guard page below every stack; MAP_NORESERVE keeps the virtual-memory
    /// footprint of thousands of mostly-idle ranks cheap).
    TaskScheduler(int ntasks, std::size_t stack_bytes);
    ~TaskScheduler();
    TaskScheduler(const TaskScheduler&) = delete;
    TaskScheduler& operator=(const TaskScheduler&) = delete;

    /// Runs `body(task)` for every task to completion, multiplexed over the
    /// parallel::pool() workers (the calling thread is worker 0).  `body`
    /// must not let exceptions escape.  Not reentrant: tasks must not start
    /// a nested run() on the same scheduler.
    void run(const std::function<void(int)>& body);

    /// True when the calling code is executing inside one of this
    /// scheduler's fibers.
    [[nodiscard]] static bool inside_task() noexcept;
    /// The fiber id of the calling task (valid only inside_task()).
    [[nodiscard]] static int current_task() noexcept;

    /// Parks the calling task until unpark().  `lk` (the caller's own
    /// structure lock, NOT held across unrelated work) is released after the
    /// task is registered as parking and re-acquired before park() returns —
    /// condition-variable semantics, so callers keep their predicate loops.
    void park(std::unique_lock<std::mutex>& lk);

    /// Makes a parked task runnable on its home worker.  Parking is
    /// race-free: an unpark that arrives while the task is still switching
    /// out is remembered and honoured immediately.  Callable from any task
    /// or from the workers themselves.
    void unpark(int task);

    /// Wakes every currently-parked task (abort/unwind path).
    void unpark_all();

    /// Invoked (once, on whichever worker detects it) when no task is
    /// runnable but some are still parked — a proven deadlock.  The handler
    /// runs without scheduler locks held; afterwards every parked task is
    /// woken so it can observe whatever the handler flagged and unwind.
    void set_stall_handler(std::function<void()> handler);

    struct Impl; ///< implementation detail, public only for internal linkage

private:
    Impl* impl_;
};

} // namespace simmpi::detail
