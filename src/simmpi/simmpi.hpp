#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "netsim/netmodel.hpp"

/// \file simmpi.hpp
/// A simulated MPI: the message-passing runtime the parallel solvers run on.
///
/// Ranks are host threads.  Point-to-point messages really move through
/// per-rank mailboxes (wrong tags or mismatched sizes fail loudly, and a
/// missing send trips the deadlock watchdog — the semantics are honest),
/// while a virtual clock per rank models what the transfer would have cost
/// on a chosen 1999-era interconnect (see netsim).  Each rank tracks
///
///   * cpu time  — compute charged by the application via advance_compute(),
///   * wall time — cpu time plus communication and idle time,
///
/// mirroring the paper's methodology: "The difference between the two types
/// of timings indicates idle CPU time, which is associated with network
/// inefficiency" (§4.2).
///
/// Collectives (alltoall, allreduce, gather, bcast, barrier) are built over
/// a shared exchange area with real data movement and are charged from the
/// network model's collective costs.  Every communication event is also
/// recorded in a per-stage log so the benchmarks can re-price a run on every
/// network without re-executing it.
///
/// If the network model carries an enabled netsim::FaultModel, every
/// communication cost is perturbed deterministically (seed, rank, per-rank
/// message index): jitter and retransmits land on the virtual clocks exactly
/// like honest slow hardware would, stragglers inflate their own comm costs
/// so their peers accumulate idle time at the next synchronisation, and the
/// per-stage FaultLog records the retransmit counts and the fault-attributed
/// extra seconds.  Faults never touch payloads — only time.
namespace simmpi {

/// Communication operation categories for the event log.
enum class CommKind : std::uint8_t { Ptp, Alltoall, Allreduce, Gather, Bcast, Barrier };

[[nodiscard]] std::string to_string(CommKind k);

/// Aggregation key: one collective/ptp call of a given per-message size.
struct CommEventKey {
    CommKind kind;
    std::size_t bytes;  ///< ptp: message size; collectives: per-rank block size
    auto operator<=>(const CommEventKey&) const = default;
};

/// stage id -> (event key -> number of occurrences).  Stage -1 collects
/// everything issued outside an explicit stage.
using CommLog = std::map<int, std::map<CommEventKey, std::uint64_t>>;

/// Prices a log on a given network for a run with `nprocs` ranks.
[[nodiscard]] double price_log(const CommLog& log, const netsim::NetworkModel& net, int nprocs);

/// Prices only the given stage.
[[nodiscard]] double price_stage(const CommLog& log, int stage, const netsim::NetworkModel& net,
                                 int nprocs);

/// Fault accounting for one stage: how many transmissions were lost and how
/// much virtual time the fault model added on top of the unfaulted costs.
struct FaultStageStats {
    std::uint64_t retransmits = 0;
    double extra_seconds = 0.0;
    FaultStageStats& operator+=(const FaultStageStats& o) {
        retransmits += o.retransmits;
        extra_seconds += o.extra_seconds;
        return *this;
    }
};

/// stage id -> fault accounting (same stage keys as CommLog).
using FaultLog = std::map<int, FaultStageStats>;

/// Thrown by World::run when a rank waits longer than the watchdog allows:
/// a missing send, a mismatched tag, or a collective some rank never enters.
/// Without the watchdog these bugs would hang the test harness forever.
class DeadlockError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

struct RankReport {
    int rank = 0;
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;
    CommLog log;
    FaultLog fault_log;
};

class World;

/// Per-rank communicator handle, valid for the duration of World::run.
class Comm {
public:
    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int size() const noexcept { return size_; }

    /// Charges `seconds` of computation to both clocks.
    void advance_compute(double seconds) noexcept;

    /// Tags subsequent comm events with `stage` (paper stages 1-7; -1 none).
    void set_stage(int stage) noexcept { stage_ = stage; }

    /// Blocking tagged send/recv of doubles.  recv's span length must equal
    /// the sent length (checked).
    void send(int dest, int tag, std::span<const double> data);
    void recv(int src, int tag, std::span<double> data);

    /// Combined exchange with a partner (both sides call it); avoids the
    /// deadlock a naive send+recv ordering would have on a synchronous model.
    void sendrecv(int partner, int tag, std::span<const double> send_data,
                  std::span<double> recv_data);

    /// MPI_Alltoall: `send` and `recv` hold size() blocks of `block` doubles.
    void alltoall(std::span<const double> send, std::span<double> recv, std::size_t block);

    /// MPI_Allreduce(SUM) in place.
    void allreduce_sum(std::span<double> data);
    [[nodiscard]] double allreduce_sum(double v);
    [[nodiscard]] double allreduce_max(double v);
    [[nodiscard]] double allreduce_min(double v);

    /// MPI_Gather of equal blocks to `root`; recv is resized at the root.
    void gather(std::span<const double> send, std::vector<double>& recv, int root);

    /// MPI_Bcast from `root`.
    void bcast(std::span<double> data, int root);

    void barrier();

    [[nodiscard]] double cpu_time() const noexcept { return cpu_; }
    [[nodiscard]] double wall_time() const noexcept { return wall_; }
    [[nodiscard]] double idle_time() const noexcept { return wall_ - cpu_; }
    [[nodiscard]] const CommLog& log() const noexcept { return log_; }
    [[nodiscard]] const FaultLog& fault_log() const noexcept { return fault_log_; }

private:
    friend class World;
    Comm(World& world, int rank, int size) : world_(&world), rank_(rank), size_(size) {}

    void record(CommKind kind, std::size_t bytes) { ++log_[stage_][{kind, bytes}]; }
    /// Applies the fault model to one comm event of unfaulted cost
    /// `base_seconds`, consuming this rank's next message index; records the
    /// perturbation in the fault log and returns the faulted cost.  With no
    /// enabled fault model this returns `base_seconds` bit-exactly.
    double faulted_cost(double base_seconds);
    /// Synchronises all ranks, sets every wall clock to the max, then adds
    /// `coll_seconds` (fault-perturbed per rank); returns the post-collective
    /// wall time.
    double sync_and_charge(double coll_seconds);

    World* world_;
    int rank_;
    int size_;
    int stage_ = -1;
    double cpu_ = 0.0;
    double wall_ = 0.0;
    std::uint64_t msg_index_ = 0; ///< per-rank deterministic fault stream position
    CommLog log_;
    FaultLog fault_log_;
};

/// A simulated cluster: N ranks over one interconnect model.
class World {
public:
    World(int nprocs, netsim::NetworkModel net);

    /// Runs `fn(comm)` on every rank (each on its own thread) and returns the
    /// per-rank reports.  Any exception thrown by a rank is rethrown here;
    /// the remaining ranks are woken and unwound instead of blocking forever.
    std::vector<RankReport> run(const std::function<void(Comm&)>& fn);

    [[nodiscard]] int size() const noexcept { return nprocs_; }
    [[nodiscard]] const netsim::NetworkModel& network() const noexcept { return net_; }

    /// Host-time bound on any single blocking wait (recv matching, collective
    /// rendezvous).  A wait exceeding it aborts the world and World::run
    /// throws DeadlockError instead of hanging the harness.
    void set_watchdog_seconds(double s) noexcept { watchdog_seconds_ = s; }
    [[nodiscard]] double watchdog_seconds() const noexcept { return watchdog_seconds_; }

private:
    friend class Comm;

    struct Message {
        int src;
        int tag;
        std::vector<double> payload;
        double avail_time; ///< virtual time at which the payload is deliverable
    };

    struct Mailbox {
        std::mutex mtx;
        std::condition_variable cv;
        std::deque<Message> queue;
    };

    /// Reusable sense-reversing barrier with a shared reduction slot.
    struct Rendezvous {
        std::mutex mtx;
        std::condition_variable cv;
        int waiting = 0;
        std::uint64_t generation = 0;
        double max_wall = 0.0;
        double result_ = 0.0; ///< snapshot of max_wall for the completed generation
    };

    /// Internal unwind signal for ranks woken by an abort; never escapes run().
    struct Aborted {};

    void deliver(int dest, Message msg);
    Message take(int self, int src, int tag);
    /// Enters the rendezvous with this rank's wall clock; returns max over all.
    double rendezvous_max(double wall);
    /// Wakes every blocked rank; they unwind with Aborted.
    void abort_world();

    int nprocs_;
    netsim::NetworkModel net_;
    double watchdog_seconds_ = 30.0;
    std::atomic<bool> aborted_{false};
    std::vector<Mailbox> mailboxes_;
    Rendezvous rdv_;
    std::mutex exch_mtx_;
    std::vector<double> exchange_; ///< collective staging area
};

} // namespace simmpi
