#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "netsim/netmodel.hpp"
#include "obs/trace.hpp"

/// \file simmpi.hpp
/// A simulated MPI: the message-passing runtime the parallel solvers run on.
///
/// Ranks are run-to-completion tasks multiplexed over the deterministic host
/// thread pool (Engine::Tasks, the default — thousands of simulated ranks
/// cost fiber stacks, not OS threads), or classic one-thread-per-rank
/// (Engine::Threads, kept as the A/B reference).  Point-to-point messages
/// really move through per-rank mailboxes (wrong tags or mismatched sizes
/// fail loudly, and a missing send is a detected deadlock — the semantics
/// are honest), while a virtual clock per rank models what the transfer
/// would have cost on a chosen 1999-era interconnect (see netsim).  Each
/// rank tracks
///
///   * cpu time  — compute charged by the application via advance_compute(),
///   * wall time — cpu time plus communication and idle time,
///
/// mirroring the paper's methodology: "The difference between the two types
/// of timings indicates idle CPU time, which is associated with network
/// inefficiency" (§4.2).
///
/// Collectives (alltoall, allreduce, gather, bcast, barrier) are built over
/// a shared exchange area with real data movement and are charged from the
/// network model's collective costs.  Comm::split(color, key) derives
/// subcommunicators (the row/column communicators of a 2-D pencil
/// decomposition); every communication event records the communicator size
/// and how many sibling communicators ran it concurrently, so a log can be
/// re-priced on topologies where concurrent groups share the wire.
///
/// If the network model carries an enabled netsim::FaultModel, every
/// communication cost is perturbed deterministically (seed, rank, per-rank
/// message index): jitter and retransmits land on the virtual clocks exactly
/// like honest slow hardware would, stragglers inflate their own comm costs
/// so their peers accumulate idle time at the next synchronisation, and the
/// per-stage FaultLog records the retransmit counts and the fault-attributed
/// extra seconds.  Faults never touch payloads — only time.
///
/// Nonblocking point-to-point (isend/irecv returning a Request, plus
/// wait/waitall/test and the chunked ialltoall) keeps the same honest
/// semantics: the transfer cost accrues in the background from the moment
/// the send is posted (consecutive posts queue behind one another on the
/// sender's NIC), and only the part of that window not covered by the
/// receiver's own work surfaces as idle time at wait().  The covered part is
/// recorded per stage in the OverlapLog — the "overlapped comm" column of
/// the application tables — and overlapped events carry a flag in the
/// CommLog so a run can be re-priced per network with and without the
/// overlap credit.  Faulted costs accrue in the background the same way.
namespace simmpi {

/// Communication operation categories for the event log.
enum class CommKind : std::uint8_t { Ptp, Alltoall, Allreduce, Gather, Bcast, Barrier, Split };

[[nodiscard]] std::string to_string(CommKind k);

/// Aggregation key: one collective/ptp call of a given per-message size.
struct CommEventKey {
    CommKind kind;
    std::size_t bytes;  ///< ptp: message size; collectives: per-rank block size
    /// Issued through the nonblocking API: the cost accrued in the
    /// background and could be hidden under computation.
    bool overlapped = false;
    /// Communicator size the event ran on; 0 = the world communicator
    /// (priced with the nprocs the pricing call supplies, which is what lets
    /// one world log be re-priced across rank counts).
    std::uint32_t group = 0;
    /// Sibling communicators from the same split() executing the collective
    /// concurrently; shared-medium topologies serialize them on the wire.
    std::uint32_t groups = 1;
    auto operator<=>(const CommEventKey&) const = default;
};

/// stage id -> (event key -> number of occurrences).  Stage -1 collects
/// everything issued outside an explicit stage.
using CommLog = std::map<int, std::map<CommEventKey, std::uint64_t>>;

/// stage id -> virtual comm seconds the nonblocking path hid under other
/// work (the part of each in-flight window that did not surface as idle).
using OverlapLog = std::map<int, double>;

/// Prices a log on a given network for a run with `nprocs` ranks.
[[nodiscard]] double price_log(const CommLog& log, const netsim::NetworkModel& net, int nprocs);

/// Prices only the given stage.
[[nodiscard]] double price_stage(const CommLog& log, int stage, const netsim::NetworkModel& net,
                                 int nprocs);

/// A log's price split into the strictly blocking part and the part issued
/// through the nonblocking API (the latter is what overlap can recover).
struct SplitSeconds {
    double blocking = 0.0;
    double overlapped = 0.0;
    [[nodiscard]] double total() const noexcept { return blocking + overlapped; }
};

[[nodiscard]] SplitSeconds price_stage_split(const CommLog& log, int stage,
                                             const netsim::NetworkModel& net, int nprocs);
[[nodiscard]] SplitSeconds price_log_split(const CommLog& log, const netsim::NetworkModel& net,
                                           int nprocs);

/// Fault accounting for one stage: how many transmissions were lost and how
/// much virtual time the fault model added on top of the unfaulted costs.
struct FaultStageStats {
    std::uint64_t retransmits = 0;
    double extra_seconds = 0.0;
    FaultStageStats& operator+=(const FaultStageStats& o) {
        retransmits += o.retransmits;
        extra_seconds += o.extra_seconds;
        return *this;
    }
};

/// stage id -> fault accounting (same stage keys as CommLog).
using FaultLog = std::map<int, FaultStageStats>;

/// How World::run executes ranks on the host.
enum class Engine : std::uint8_t {
    /// One OS thread per rank.  Simple, but caps the simulable rank count at
    /// what the host comfortably schedules; kept as the A/B determinism
    /// reference for the task engine.
    Threads,
    /// Ranks are run-to-completion fiber tasks multiplexed over the
    /// parallel::pool() workers, parking at comm points and resuming when
    /// the virtual-clock event that unblocks them fires.  Bit-identical
    /// results to Threads; scales to thousands of ranks.
    Tasks,
};

/// Thrown by World::run when a rank waits on a comm event that can never
/// arrive: a missing send, a mismatched tag, or a collective some rank never
/// enters.  Under Engine::Tasks this is detected exactly (no runnable task,
/// some still parked); under Engine::Threads a host-time watchdog bounds the
/// wait.  Without it these bugs would hang the test harness forever.
class DeadlockError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown by World::run (before any rank starts) when the requested rank
/// count exceeds the engine's configured task/thread limit — a clear
/// diagnostic instead of an OOM or a scheduler hang.
class OversubscriptionError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown inside a rank when the fault model's kill event fires: the "node"
/// dies at a deterministic position of its comm-event stream.  World::run
/// rethrows it in preference over the DeadlockErrors the dead rank's
/// now-abandoned peers may hit first (deadlock detection is the backstop
/// when the death itself is silent), so a recovery harness can catch one
/// exception type, roll back to the last checkpoint and replay.
class RankKilledError : public std::runtime_error {
public:
    RankKilledError(int rank, std::uint64_t msg_index, double wall_seconds)
        : std::runtime_error("simmpi: rank " + std::to_string(rank) +
                             " killed by the fault model at comm event " +
                             std::to_string(msg_index) + " (virtual wall " +
                             std::to_string(wall_seconds) + " s)"),
          rank_(rank),
          msg_index_(msg_index),
          wall_seconds_(wall_seconds) {}

    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] std::uint64_t msg_index() const noexcept { return msg_index_; }
    /// The killed rank's virtual wall clock at the moment of death — the
    /// upper end of the recovery window a checkpoint rolls back from.
    [[nodiscard]] double wall_seconds() const noexcept { return wall_seconds_; }

private:
    int rank_;
    std::uint64_t msg_index_;
    double wall_seconds_;
};

struct RankReport {
    int rank = 0;
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;
    CommLog log;
    FaultLog fault_log;
    OverlapLog overlap_log;
};

class World;
class Comm;

namespace detail {

class TaskScheduler;

/// An in-flight point-to-point payload with its virtual-time price tag.
struct Message {
    int src;           ///< sender's rank *within the communicator* `ctx`
    std::uint64_t ctx; ///< communicator context the message travels in
    int tag;
    std::vector<double> payload;
    double avail_time; ///< virtual time at which the payload is deliverable
    double cost = 0.0; ///< transfer seconds that accrued in the background
};

/// Everything a world rank owns exactly once, shared by every Comm view
/// (world communicator and split() subcommunicators) that rank holds: the
/// virtual clocks, the NIC horizon, the deterministic fault-stream position,
/// and the per-stage logs.
struct RankState {
    int stage = -1;
    double cpu = 0.0;
    double wall = 0.0;
    double nic_busy = 0.0; ///< virtual time the NIC finishes its posted queue
    int pending_recvs = 0;
    std::uint64_t msg_index = 0; ///< per-rank deterministic fault stream position
    CommLog log;
    FaultLog fault_log;
    OverlapLog overlap_log;
    obs::Lane* trace_lane = nullptr; ///< this rank's obs lane, resolved lazily
};

/// The shared half of one communicator: the member list, the rendezvous the
/// members synchronise on, and the collective staging area.  The world
/// communicator has ctx 0; split() interns one GroupState per derived
/// context in the World registry (first arriver creates it).
struct GroupState {
    std::uint64_t ctx = 0;
    std::vector<int> members; ///< world rank of each group rank, in group order
    std::uint32_t siblings = 1; ///< concurrent communicators from the same split

    /// Reusable sense-reversing rendezvous with a max-reduction slot.
    std::mutex mtx;
    std::condition_variable cv; ///< Engine::Threads waiters
    int waiting = 0;
    std::uint64_t generation = 0;
    double max_wall = 0.0;
    double result = 0.0; ///< snapshot of max_wall for the completed generation
    std::vector<int> parked; ///< Engine::Tasks: task ids parked in this rendezvous

    std::mutex exch_mtx;
    std::vector<double> exchange; ///< collective staging area
};

} // namespace detail

/// Handle for one nonblocking operation (isend/irecv).  Move-only: a Request
/// represents exactly one pending completion, and wait()/test() consume it.
class Request {
public:
    Request() = default;
    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;
    Request(Request&& o) noexcept { *this = std::move(o); }
    Request& operator=(Request&& o) noexcept {
        kind_ = o.kind_;
        done_ = o.done_;
        peer_ = o.peer_;
        tag_ = o.tag_;
        buf_ = o.buf_;
        post_wall_ = o.post_wall_;
        o.kind_ = Kind::None;
        o.done_ = false;
        return *this;
    }

    [[nodiscard]] bool valid() const noexcept { return kind_ != Kind::None; }
    [[nodiscard]] bool done() const noexcept { return done_; }

private:
    friend class Comm;
    enum class Kind : std::uint8_t { None, Send, Recv };
    Kind kind_ = Kind::None;
    bool done_ = false;
    int peer_ = -1; ///< peer rank within the issuing communicator
    int tag_ = 0;
    std::span<double> buf_{};
    double post_wall_ = 0.0; ///< wall clock when the receive was posted
};

/// A chunked nonblocking alltoall in flight (see Comm::ialltoall).  The
/// per-peer block is divided into `num_slices()` contiguous sub-blocks
/// (multiples of the construction-time granule); slices must be sent and
/// waited in ascending order, but sends, waits, and the caller's computation
/// interleave freely — that interleaving is the communication/computation
/// overlap the pipelined exchanges are built on.
class Ialltoall {
public:
    Ialltoall() = default;

    [[nodiscard]] std::size_t num_slices() const noexcept { return nslices_; }
    /// Offset/length of slice `s` within each per-peer block, in doubles.
    [[nodiscard]] std::size_t slice_offset(std::size_t s) const noexcept;
    [[nodiscard]] std::size_t slice_len(std::size_t s) const noexcept;

    /// Ships slice `s` of every peer's block out of `send` (same size/layout
    /// as the recv buffer: size() blocks of `block` doubles).  The self
    /// block's slice is copied straight into the recv buffer.
    void send_slice(std::size_t s, std::span<const double> send);
    /// Blocks until slice `s` has arrived from every peer; the payload lands
    /// in the recv buffer given at ialltoall().
    void wait_slice(std::size_t s);
    /// Waits for every slice not yet waited on.
    void finish();

private:
    friend class Comm;
    Comm* comm_ = nullptr;
    std::span<double> recv_{};
    std::size_t block_ = 0;
    std::size_t granule_ = 1;
    std::size_t nslices_ = 0;
    int tag_ = 0;
    std::vector<Request> recvs_; ///< slice-major, size() entries per slice (self unused)
    std::size_t next_send_ = 0;
    std::size_t next_wait_ = 0;
};

/// A rank's view of one communicator, valid for the duration of World::run.
/// The world communicator is handed to the rank function; split() derives
/// subcommunicator views sharing the same per-rank clocks and logs.
/// Move-only: a Comm is one rank's membership, not a value.
class Comm {
public:
    Comm() = default; ///< null communicator until move-assigned
    Comm(const Comm&) = delete;
    Comm& operator=(const Comm&) = delete;
    Comm(Comm&&) noexcept = default;
    Comm& operator=(Comm&&) noexcept = default;

    /// Rank within this communicator (-1 on a null communicator).
    [[nodiscard]] int rank() const noexcept { return grank_; }
    /// Number of ranks in this communicator (0 on a null communicator).
    [[nodiscard]] int size() const noexcept { return gsize_; }
    /// This rank's id in the world communicator (stable across splits).
    [[nodiscard]] int world_rank() const noexcept { return wrank_; }
    /// True for a default-constructed Comm and for the color < 0 result of
    /// split(); every communication call on a null communicator throws.
    [[nodiscard]] bool is_null() const noexcept { return group_ == nullptr; }

    /// MPI_Comm_split: collective over this communicator.  Ranks passing the
    /// same color >= 0 form a new communicator, ordered by (key, rank);
    /// color < 0 yields a null Comm.  The derived context is a deterministic
    /// function of (parent context, split sequence number, color), so
    /// recovery replays rebuild identical communicators.  Charged as a small
    /// allgather; logged as CommKind::Split.
    [[nodiscard]] Comm split(int color, int key);

    /// Charges `seconds` of computation to both clocks.
    void advance_compute(double seconds) noexcept;

    /// Tags subsequent comm events with `stage` (paper stages 1-7; -1 none).
    void set_stage(int stage) noexcept { rs_->stage = stage; }

    /// Blocking tagged send/recv of doubles.  recv's span length must equal
    /// the sent length (checked).  Ranks are communicator-relative.
    void send(int dest, int tag, std::span<const double> data);
    void recv(int src, int tag, std::span<double> data);

    /// Combined exchange with a partner (both sides call it); avoids the
    /// deadlock a naive send+recv ordering would have on a synchronous model.
    void sendrecv(int partner, int tag, std::span<const double> send_data,
                  std::span<double> recv_data);

    /// Nonblocking send: the payload is buffered immediately (the request
    /// completes at once), but the transfer cost accrues in the background —
    /// consecutive posts queue behind one another on this rank's NIC, so a
    /// burst of isends to P-1 peers costs what P-1 serialized transfers
    /// cost, only hideable under whatever the rank computes meanwhile.
    Request isend(int dest, int tag, std::span<const double> data);

    /// Posts a receive; `data` must stay valid until wait()/test() completes
    /// the request.  Posting is free — matching, payload delivery, idle
    /// charging, and overlap accounting all happen at completion.
    Request irecv(int src, int tag, std::span<double> data);

    /// Completes a request.  For a receive this blocks until the matching
    /// message exists, then advances the wall clock only by the *uncovered*
    /// remainder of the transfer window: the part already covered by work
    /// done since the post is credited to the stage's OverlapLog instead of
    /// becoming idle time.
    void wait(Request& r);
    void waitall(std::span<Request> rs);

    /// Nonblocking completion probe.  Returns true (and completes the
    /// request exactly like wait) only when the matching message has arrived
    /// in *virtual* time as well as host time; a false result is always safe
    /// to retry.  Solvers that must stay bit-deterministic should branch on
    /// wait(), not test() — host scheduling may delay a true result.
    [[nodiscard]] bool test(Request& r);

    /// MPI_Alltoall: `send` and `recv` hold size() blocks of `block` doubles.
    void alltoall(std::span<const double> send, std::span<double> recv, std::size_t block);

    /// Chunked nonblocking alltoall.  Posts receives for every (peer, slice)
    /// sub-block up front; the caller ships slices with send_slice() and
    /// claims them with wait_slice(), computing in between.  Each per-peer
    /// message is priced as its share of the equivalent blocking collective
    /// (netsim::NetworkModel::alltoall_share_seconds), so the background
    /// total matches what alltoall() would have charged — the overlap
    /// changes who pays, not how much the network works.  Blocks must divide
    /// into `granule`-sized units; slices are near-equal runs of units.
    /// Logged as one overlapped Alltoall event.
    Ialltoall ialltoall(std::span<double> recv, std::size_t block, std::size_t nslices = 1,
                        std::size_t granule = 1);

    /// MPI_Allreduce(SUM) in place.
    void allreduce_sum(std::span<double> data);
    [[nodiscard]] double allreduce_sum(double v);
    [[nodiscard]] double allreduce_max(double v);
    [[nodiscard]] double allreduce_min(double v);

    /// MPI_Gather of equal blocks to `root`; recv is resized at the root.
    void gather(std::span<const double> send, std::vector<double>& recv, int root);

    /// MPI_Bcast from `root`.
    void bcast(std::span<double> data, int root);

    void barrier();

    [[nodiscard]] double cpu_time() const noexcept { return rs_->cpu; }
    [[nodiscard]] double wall_time() const noexcept { return rs_->wall; }
    [[nodiscard]] double idle_time() const noexcept { return rs_->wall - rs_->cpu; }
    [[nodiscard]] const CommLog& log() const noexcept { return rs_->log; }
    [[nodiscard]] const FaultLog& fault_log() const noexcept { return rs_->fault_log; }
    [[nodiscard]] const OverlapLog& overlap_log() const noexcept { return rs_->overlap_log; }
    /// Receives posted but not yet completed (across every communicator this
    /// rank holds); a rank finishing with pending requests is a bug
    /// World::run reports.
    [[nodiscard]] int pending_requests() const noexcept { return rs_->pending_recvs; }

    /// This rank's comm-event counter (the deterministic fault/RNG stream
    /// position).  Tests use it to place a kill event at an exact step.
    [[nodiscard]] std::uint64_t comm_events() const noexcept { return rs_->msg_index; }

    /// Serializes this rank's full virtual state — both clocks, the NIC
    /// queue horizon, the fault-stream position (the "RNG stream"), the
    /// collective tag and split sequences, and the comm/fault/overlap logs —
    /// into a checkpoint section.  World communicator only; requires no
    /// pending nonblocking receives (a checkpoint mid-exchange is a caller
    /// bug, reported loudly).
    void save_state(ckpt::SectionWriter& w) const;
    /// Restores the state written by save_state; with every rank restored
    /// from the same checkpoint step, a replay is bit-identical to the
    /// original run — clocks, logs and fault draws included.
    void restore_state(ckpt::SectionReader& r);

    /// Serializes the communicator-local progress (collective tag sequence,
    /// split counter) of this view.  A solver holding subcommunicators saves
    /// one of these per subcomm next to the world comm's save_state; the
    /// shared per-rank clocks and logs are not duplicated.
    void save_group_state(ckpt::SectionWriter& w) const;
    void restore_group_state(ckpt::SectionReader& r);

private:
    friend class World;
    friend class Ialltoall;
    Comm(World& world, detail::RankState* rs, std::shared_ptr<detail::GroupState> group,
         int grank, int wrank, std::uint64_t ctx)
        : world_(&world),
          rs_(rs),
          group_(std::move(group)),
          grank_(grank),
          gsize_(group_ ? static_cast<int>(group_->members.size()) : 0),
          wrank_(wrank),
          ctx_(ctx) {}

    /// Throws on a null communicator (every comm entry point calls this).
    void require(const char* what) const {
        if (group_ == nullptr)
            throw std::logic_error(std::string("simmpi: ") + what + " on a null communicator");
    }

    void record(CommKind kind, std::size_t bytes, bool overlapped = false) {
        ++rs_->log[rs_->stage][{kind, bytes, overlapped,
                                ctx_ == 0 ? 0u : static_cast<std::uint32_t>(gsize_),
                                group_->siblings}];
    }
    /// Applies the fault model to one comm event of unfaulted cost
    /// `base_seconds`, consuming this rank's next message index; records the
    /// perturbation in the fault log and returns the faulted cost.  With no
    /// enabled fault model this returns `base_seconds` bit-exactly.
    double faulted_cost(double base_seconds);
    /// Synchronises this communicator's ranks, sets every wall clock to the
    /// max, then adds `coll_seconds` (fault-perturbed per rank); returns the
    /// post-collective wall time.
    double sync_and_charge(double coll_seconds);

    /// Queues a background transfer of unfaulted cost `base_cost` on this
    /// rank's NIC (posts serialize); fills the message's avail/cost fields
    /// and charges the sender-side injection overhead.
    void post_background(int dest, int tag, std::span<const double> data, double base_cost);
    /// Completion accounting shared by wait()/test(): delivers the payload,
    /// charges the uncovered remainder as idle, credits the covered part to
    /// the overlap log.
    void absorb(Request& r, detail::Message&& msg);
    /// Called by World::run after the rank function returns cleanly.
    void check_no_pending() const;

    // --- obs tracing (vanish under REPRO_TRACING=0; one relaxed atomic load
    //     while the tracer is disabled) ---
    /// Opens a span named `name` on this rank's lane ("rank N" by world
    /// rank, created on first use) at the current virtual wall clock, tagged
    /// with a kind/bytes/overlapped argument fragment.  Returns the interned
    /// name id, or 0 when tracing is inactive (trace_end(0) is a no-op).
    std::uint32_t trace_begin(const char* name, CommKind kind, std::size_t bytes,
                              bool overlapped = false);
    /// Closes the span opened by the matching trace_begin at the current
    /// virtual wall clock.
    void trace_end(std::uint32_t name_id);
    /// Marks a zero-duration event (nonblocking posts).
    void trace_instant(const char* name, CommKind kind, std::size_t bytes, bool overlapped);
    /// Samples a per-rank counter track (fault extra seconds, overlap credit).
    void trace_counter(const char* name, double value);

    World* world_ = nullptr;
    detail::RankState* rs_ = nullptr;
    std::shared_ptr<detail::GroupState> group_;
    int grank_ = -1;
    int gsize_ = 0;
    int wrank_ = -1;
    std::uint64_t ctx_ = 0;
    int coll_seq_ = 0;  ///< nonblocking-collective sequence number (tag space)
    int split_seq_ = 0; ///< split() calls issued through this communicator
};

/// A simulated cluster: N ranks over one interconnect model.
class World {
public:
    World(int nprocs, netsim::NetworkModel net, Engine engine = Engine::Tasks);

    /// Runs `fn(comm)` on every rank (fiber tasks or threads, per the
    /// engine) and returns the per-rank reports.  Any exception thrown by a
    /// rank is rethrown here; the remaining ranks are woken and unwound
    /// instead of blocking forever.
    std::vector<RankReport> run(const std::function<void(Comm&)>& fn);

    [[nodiscard]] int size() const noexcept { return nprocs_; }
    [[nodiscard]] const netsim::NetworkModel& network() const noexcept { return net_; }
    [[nodiscard]] Engine engine() const noexcept { return engine_; }

    /// Engine::Tasks rank ceiling (default 8192).  run() refuses more ranks
    /// with OversubscriptionError instead of silently exhausting memory.
    void set_max_tasks(int n) noexcept { max_tasks_ = n; }
    [[nodiscard]] int max_tasks() const noexcept { return max_tasks_; }

    /// Per-task fiber stack size for Engine::Tasks (default 2 MiB; the
    /// mapping is MAP_NORESERVE, so mostly-idle ranks stay cheap).
    void set_task_stack_bytes(std::size_t bytes) noexcept { stack_bytes_ = bytes; }

    /// Host-time bound on any single blocking wait under Engine::Threads
    /// (recv matching, collective rendezvous).  A wait exceeding it aborts
    /// the world and World::run throws DeadlockError instead of hanging the
    /// harness.  Engine::Tasks detects deadlock exactly (quiescence) and
    /// does not need the timeout.
    void set_watchdog_seconds(double s) noexcept { watchdog_seconds_ = s; }
    [[nodiscard]] double watchdog_seconds() const noexcept { return watchdog_seconds_; }

    /// Clears an armed fault-model kill event: the failed node has been
    /// "replaced by a spare" ahead of a recovery replay.  The fault model's
    /// cost perturbations are untouched — they are a pure function of
    /// (seed, rank, msg_index), so the replay re-draws them bit-identically.
    void disarm_kill() noexcept { net_.fault.kill_rank = -1; }

private:
    friend class Comm;
    friend class Ialltoall;

    using Message = detail::Message;

    struct Mailbox {
        std::mutex mtx;
        std::condition_variable cv; ///< Engine::Threads waiter
        std::deque<Message> queue;
        int waiting_task = -1; ///< Engine::Tasks: task parked on this mailbox
    };

    /// Internal unwind signal for ranks woken by an abort; never escapes run().
    struct Aborted {};

    void deliver(int dest, Message msg);
    Message take(int self, int src, std::uint64_t ctx, int tag);
    /// Nonblocking probe: pops the first (src, ctx, tag) match only if it
    /// exists AND its avail_time has passed in the receiver's virtual time
    /// `wall`.  A later-queued match never jumps an earlier one (FIFO per
    /// channel).
    [[nodiscard]] bool try_take(int self, int src, std::uint64_t ctx, int tag, double wall,
                                Message& out);
    /// Enters the group's rendezvous with this rank's wall clock; returns
    /// the max over all members.
    double rendezvous_max(detail::GroupState& g, double wall);
    /// Wakes every blocked rank; they unwind with Aborted.
    void abort_world();
    /// Registry lookup/create for a split()-derived group.  The first
    /// arriving member creates the GroupState; late arrivers attach to it.
    /// Cleared after every run() so recovery replays regenerate the same
    /// contexts from scratch.
    std::shared_ptr<detail::GroupState> intern_group(std::uint64_t ctx,
                                                     std::vector<int> members,
                                                     std::uint32_t siblings);

    int nprocs_;
    netsim::NetworkModel net_;
    Engine engine_;
    double watchdog_seconds_ = 30.0;
    int max_tasks_ = 8192;
    std::size_t stack_bytes_ = std::size_t{2} << 20;
    std::atomic<bool> aborted_{false};
    std::vector<Mailbox> mailboxes_;
    std::shared_ptr<detail::GroupState> world_group_;
    std::mutex groups_mtx_;
    std::map<std::uint64_t, std::shared_ptr<detail::GroupState>> groups_;
    detail::TaskScheduler* sched_ = nullptr; ///< live only inside a Tasks run
};

} // namespace simmpi
