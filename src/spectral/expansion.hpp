#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "la/dense.hpp"

/// \file expansion.hpp
/// 2-D spectral/hp expansions on the reference quadrilateral and triangle.
///
/// Modes are ordered vertices first, then edges, then interior — the
/// boundary-first ordering of the paper's Figure 9 that gives the elemental
/// Laplacian its banded interior block (Figure 10).  All quadrature-point
/// tables (basis values, reference-coordinate derivatives, weights) are
/// precomputed at construction; the triangle's collapsed-coordinate factors
/// are folded into its derivative tables so downstream code never sees
/// eta coordinates.
namespace spectral {

enum class Shape { Quad, Triangle };

/// The 1-D factorisation of a tensor-product expansion: everything a
/// sum-factorised operator evaluation needs.  Mode m of the 2-D basis is
/// psi_{pq[m][0]}(xi1) * psi_{pq[m][1]}(xi2), and the quadrature grid is the
/// tensor square of one 1-D rule (point q = qj*nq1d + qi, xi1 fast).
struct TensorBasis {
    std::size_t nq1d = 0; ///< quadrature points per direction
    std::size_t nm1d = 0; ///< 1-D modes (order + 1)
    /// b1(qi, p) = psi_p(z_qi) and d1(qi, p) = psi_p'(z_qi): nq1d-by-nm1d
    /// row-major, the same storage convention as basis()/dbasis_dxi1().
    la::DenseMatrix b1, d1;
    /// Boundary-first mode -> lexicographic tensor indices (p, q).
    std::vector<std::array<std::size_t, 2>> pq;
    /// 1-D quadrature weights (2-D weight = w1d[qi] * w1d[qj]).
    std::vector<double> w1d;
};

class Expansion {
public:
    virtual ~Expansion() = default;

    [[nodiscard]] Shape shape() const noexcept { return shape_; }
    [[nodiscard]] std::size_t order() const noexcept { return order_; }
    [[nodiscard]] std::size_t num_modes() const noexcept { return basis_.cols(); }
    [[nodiscard]] std::size_t num_quad() const noexcept { return basis_.rows(); }
    [[nodiscard]] std::size_t num_vertices() const noexcept {
        return shape_ == Shape::Quad ? 4 : 3;
    }
    [[nodiscard]] std::size_t num_edges() const noexcept { return num_vertices(); }
    /// Interior edge modes per edge (order - 1).
    [[nodiscard]] std::size_t edge_mode_count() const noexcept { return order_ - 1; }

    /// Mode index of local vertex v.
    [[nodiscard]] std::size_t vertex_mode(std::size_t v) const noexcept { return v; }
    /// Mode index of the j-th interior mode (1-based j in 1..order-1) of edge e.
    [[nodiscard]] std::size_t edge_mode(std::size_t e, std::size_t j) const noexcept {
        return num_vertices() + e * edge_mode_count() + (j - 1);
    }
    /// First interior (bubble) mode index; interior modes are contiguous to
    /// num_modes().
    [[nodiscard]] std::size_t interior_begin() const noexcept {
        return num_vertices() * (1 + edge_mode_count());
    }
    [[nodiscard]] std::size_t num_boundary_modes() const noexcept { return interior_begin(); }

    /// Local vertex pair (a, b) giving edge e's intrinsic direction (modes
    /// increase from a to b).
    [[nodiscard]] std::array<std::size_t, 2> edge_vertices(std::size_t e) const noexcept;

    /// The 1-D factorisation when the basis is a tensor product (quads);
    /// nullptr otherwise.  The triangle's collapsed-coordinate factors vary
    /// per mode family, so it stays on the dense path.
    [[nodiscard]] virtual const TensorBasis* tensor_basis() const noexcept { return nullptr; }

    /// basis()(q, m): value of mode m at quadrature point q.
    [[nodiscard]] const la::DenseMatrix& basis() const noexcept { return basis_; }
    /// Derivatives with respect to the reference coordinates (xi1, xi2).
    [[nodiscard]] const la::DenseMatrix& dbasis_dxi1() const noexcept { return dxi1_; }
    [[nodiscard]] const la::DenseMatrix& dbasis_dxi2() const noexcept { return dxi2_; }

    /// Reference-element quadrature weights (include the collapsed-coordinate
    /// Jacobian on the triangle, so sum(weights) = reference area).
    [[nodiscard]] std::span<const double> quad_weights() const noexcept { return weights_; }
    /// Reference coordinates of quadrature point q.
    [[nodiscard]] double xi1(std::size_t q) const noexcept { return xi1_[q]; }
    [[nodiscard]] double xi2(std::size_t q) const noexcept { return xi2_[q]; }

    /// Value of mode m at an arbitrary reference point (boundary traces,
    /// probes, force integrals).  On the triangle, points on the collapsed
    /// edge xi2 = 1 are perturbed infinitesimally.
    [[nodiscard]] virtual double eval_mode(std::size_t m, double x1, double x2) const = 0;
    /// Reference-coordinate gradient of mode m at an arbitrary point.
    [[nodiscard]] virtual std::array<double, 2> eval_mode_deriv(std::size_t m, double x1,
                                                                double x2) const = 0;

protected:
    Expansion(Shape shape, std::size_t order) : shape_(shape), order_(order) {}

    Shape shape_;
    std::size_t order_;
    la::DenseMatrix basis_, dxi1_, dxi2_;
    std::vector<double> weights_, xi1_, xi2_;
};

/// Tensor-product expansion on [-1,1]^2 with (order+1)^2 modes.
class QuadExpansion final : public Expansion {
public:
    /// `order` >= 1; `nq1d` quadrature points per direction (default order+2,
    /// enough for exact mass matrices on affine elements).
    explicit QuadExpansion(std::size_t order, std::size_t nq1d = 0);

    [[nodiscard]] const TensorBasis* tensor_basis() const noexcept override { return &tb_; }

    [[nodiscard]] double eval_mode(std::size_t m, double x1, double x2) const override;
    [[nodiscard]] std::array<double, 2> eval_mode_deriv(std::size_t m, double x1,
                                                        double x2) const override;

private:
    std::vector<std::array<std::size_t, 2>> pq_; ///< tensor (p, q) per mode
    TensorBasis tb_;                             ///< 1-D factorisation of the basis
};

namespace detail {
/// One 1-D factor of a collapsed-coordinate mode (value and derivative).
struct TriFactor;
} // namespace detail

/// Collapsed-coordinate expansion on the reference triangle
/// {(-1,-1),(1,-1),(-1,1)} with 3 + 3(order-1) + (order-1)(order-2)/2 modes.
class TriExpansion final : public Expansion {
public:
    explicit TriExpansion(std::size_t order, std::size_t nq1d = 0);
    ~TriExpansion() override;

    [[nodiscard]] double eval_mode(std::size_t m, double x1, double x2) const override;
    [[nodiscard]] std::array<double, 2> eval_mode_deriv(std::size_t m, double x1,
                                                        double x2) const override;

private:
    std::vector<std::pair<detail::TriFactor, detail::TriFactor>> modes_;
};

/// Factory with a per-(shape, order) cache; expansions are immutable so the
/// shared instances are safe to use from multiple threads.
[[nodiscard]] std::shared_ptr<const Expansion> make_expansion(Shape shape, std::size_t order);

} // namespace spectral
