#pragma once

#include <cstddef>

/// \file basis1d.hpp
/// The 1-D "modified" hierarchical modal basis of Karniadakis & Sherwin:
///   psi_0(z)   = (1 - z)/2                         (left vertex)
///   psi_P(z)   = (1 + z)/2                         (right vertex)
///   psi_p(z)   = (1-z)/2 * (1+z)/2 * P_{p-1}^{1,1}(z),  1 <= p <= P-1
/// This is the building block of the quadrilateral tensor expansion and the
/// eta_1 direction of the triangle.
namespace spectral {

/// Value of mode p (0..order) at z for expansion order `order`.
[[nodiscard]] double modal_basis(std::size_t p, std::size_t order, double z) noexcept;

/// Derivative of mode p at z.
[[nodiscard]] double modal_basis_derivative(std::size_t p, std::size_t order,
                                            double z) noexcept;

/// Sign picked up by interior edge mode j (1-based) when the edge is
/// traversed in the reverse direction: P^{1,1}_{j-1}(-z) = (-1)^{j-1} P(z).
[[nodiscard]] constexpr double edge_reversal_sign(std::size_t j) noexcept {
    return (j % 2 == 0) ? -1.0 : 1.0;
}

} // namespace spectral
