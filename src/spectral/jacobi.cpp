#include "spectral/jacobi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/dense.hpp"

namespace spectral {

double jacobi(std::size_t n, double alpha, double beta, double x) noexcept {
    if (n == 0) return 1.0;
    double pm1 = 1.0;
    double p = 0.5 * ((alpha - beta) + (alpha + beta + 2.0) * x);
    for (std::size_t k = 1; k < n; ++k) {
        const double kk = static_cast<double>(k);
        const double a1 = 2.0 * (kk + 1.0) * (kk + alpha + beta + 1.0) * (2.0 * kk + alpha + beta);
        const double a2 = (2.0 * kk + alpha + beta + 1.0) * (alpha * alpha - beta * beta);
        const double a3 = (2.0 * kk + alpha + beta) * (2.0 * kk + alpha + beta + 1.0) *
                          (2.0 * kk + alpha + beta + 2.0);
        const double a4 = 2.0 * (kk + alpha) * (kk + beta) * (2.0 * kk + alpha + beta + 2.0);
        const double pnext = ((a2 + a3 * x) * p - a4 * pm1) / a1;
        pm1 = p;
        p = pnext;
    }
    return p;
}

double jacobi_derivative(std::size_t n, double alpha, double beta, double x) noexcept {
    if (n == 0) return 0.0;
    return 0.5 * (static_cast<double>(n) + alpha + beta + 1.0) *
           jacobi(n - 1, alpha + 1.0, beta + 1.0, x);
}

namespace {

/// std::lgamma writes the global `signgam`, which races when several simmpi
/// rank threads build quadrature rules at once; the reentrant variant
/// returns bit-identical values without the global.  Declared here because
/// -std=c++20 (strict ANSI) hides the libc prototype.
extern "C" double lgamma_r(double, int*);

double lgamma_ts(double x) {
    int sign = 0;
    return lgamma_r(x, &sign);
}

/// Gamma-function-free zeroth moment of the Jacobi weight via the Beta
/// function identity mu0 = 2^(a+b+1) * B(a+1, b+1).
double mu0(double a, double b) {
    return std::pow(2.0, a + b + 1.0) *
           std::exp(lgamma_ts(a + 1.0) + lgamma_ts(b + 1.0) - lgamma_ts(a + b + 2.0));
}

/// Recurrence coefficients (Gautschi): diagonal ak, off-diagonal sqrt(bk).
void jacobi_matrix(std::size_t n, double a, double b, std::vector<double>& diag,
                   std::vector<double>& off) {
    diag.resize(n);
    off.assign(n, 0.0); // off[k] couples k and k+1 (last unused)
    for (std::size_t k = 0; k < n; ++k) {
        const double kk = static_cast<double>(k);
        if (k == 0) {
            diag[k] = (b - a) / (a + b + 2.0);
        } else {
            const double s = 2.0 * kk + a + b;
            diag[k] = (b * b - a * a) / (s * (s + 2.0));
        }
    }
    for (std::size_t k = 1; k < n; ++k) {
        const double kk = static_cast<double>(k);
        const double s = 2.0 * kk + a + b;
        const double bk = 4.0 * kk * (kk + a) * (kk + b) * (kk + a + b) /
                          (s * s * (s + 1.0) * (s - 1.0));
        off[k - 1] = std::sqrt(bk);
    }
}

/// Symmetric tridiagonal QL with implicit shifts; eigenvalues land in `d`,
/// and `z` (entered as e0) accumulates the first row of the eigenvector
/// matrix, so Gauss weights are mu0 * z_i^2 (Golub-Welsch).
void tql_first_row(std::vector<double>& d, std::vector<double>& e, std::vector<double>& z) {
    const std::size_t n = d.size();
    if (n == 0) return;
    e.resize(n, 0.0);
    for (std::size_t l = 0; l < n; ++l) {
        std::size_t iter = 0;
        for (;;) {
            std::size_t m = l;
            for (; m + 1 < n; ++m) {
                const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
                if (std::abs(e[m]) <= 1e-300 + 1e-15 * dd) break;
            }
            if (m == l) break;
            if (++iter > 60) throw std::runtime_error("tql: no convergence");
            double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            double r = std::hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
            double s = 1.0, c = 1.0, p = 0.0;
            for (std::size_t i = m; i-- > l;) {
                double f = s * e[i];
                const double bb = c * e[i];
                r = std::hypot(f, g);
                e[i + 1] = r;
                if (r == 0.0) {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * bb;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - bb;
                f = z[i + 1];
                z[i + 1] = s * z[i] + c * f;
                z[i] = c * z[i] - s * f;
            }
            if (r == 0.0 && m > l + 1) continue;
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    // Sort ascending, carrying z.
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(), [&](std::size_t i, std::size_t j) { return d[i] < d[j]; });
    std::vector<double> ds(n), zs(n);
    for (std::size_t i = 0; i < n; ++i) {
        ds[i] = d[idx[i]];
        zs[i] = z[idx[i]];
    }
    d = std::move(ds);
    z = std::move(zs);
}

} // namespace

QuadratureRule gauss_jacobi(std::size_t n, double alpha, double beta) {
    assert(n >= 1);
    std::vector<double> diag, off;
    jacobi_matrix(n, alpha, beta, diag, off);
    std::vector<double> z(n, 0.0);
    z[0] = 1.0;
    tql_first_row(diag, off, z);
    QuadratureRule rule;
    rule.points = diag;
    rule.weights.resize(n);
    const double m0 = mu0(alpha, beta);
    for (std::size_t i = 0; i < n; ++i) rule.weights[i] = m0 * z[i] * z[i];
    return rule;
}

QuadratureRule gauss_lobatto_jacobi(std::size_t n, double alpha, double beta) {
    assert(n >= 2);
    QuadratureRule rule;
    rule.points.resize(n);
    rule.points.front() = -1.0;
    rule.points.back() = 1.0;
    if (n > 2) {
        // Interior Lobatto points are the zeros of P_{n-2}^{alpha+1,beta+1},
        // i.e. the (n-2)-point Gauss-Jacobi nodes at incremented exponents.
        const QuadratureRule inner = gauss_jacobi(n - 2, alpha + 1.0, beta + 1.0);
        std::copy(inner.points.begin(), inner.points.end(), rule.points.begin() + 1);
    }
    // Weights from exactness on the Jacobi basis: sum_i w_i P_k(x_i) must
    // reproduce the weighted integrals (mu0 for k = 0, 0 otherwise).
    la::DenseMatrix v(n, n);
    std::vector<double> rhs(n, 0.0);
    rhs[0] = mu0(alpha, beta);
    for (std::size_t k = 0; k < n; ++k)
        for (std::size_t i = 0; i < n; ++i) v(k, i) = jacobi(k, alpha, beta, rule.points[i]);
    std::vector<std::size_t> piv;
    if (!lu_factor(v, piv)) throw std::runtime_error("gauss_lobatto_jacobi: singular system");
    lu_solve(v, piv, rhs);
    rule.weights = std::move(rhs);
    return rule;
}

} // namespace spectral
