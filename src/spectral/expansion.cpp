#include "spectral/expansion.hpp"

#include <cassert>
#include <cmath>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "spectral/basis1d.hpp"
#include "spectral/jacobi.hpp"

namespace spectral {

std::array<std::size_t, 2> Expansion::edge_vertices(std::size_t e) const noexcept {
    if (shape_ == Shape::Quad) {
        constexpr std::array<std::array<std::size_t, 2>, 4> edges = {
            {{0, 1}, {1, 2}, {3, 2}, {0, 3}}};
        return edges[e];
    }
    constexpr std::array<std::array<std::size_t, 2>, 3> edges = {{{0, 1}, {1, 2}, {0, 2}}};
    return edges[e];
}

// ---------------------------------------------------------------------------
// Quadrilateral
// ---------------------------------------------------------------------------

QuadExpansion::QuadExpansion(std::size_t order, std::size_t nq1d)
    : Expansion(Shape::Quad, order) {
    if (order < 1) throw std::invalid_argument("QuadExpansion: order must be >= 1");
    const std::size_t P = order;
    if (nq1d == 0) nq1d = P + 2;
    const QuadratureRule rule = gauss_lobatto(nq1d);

    // Mode list in boundary-first order, as (p, q) tensor indices.
    std::vector<std::array<std::size_t, 2>>& pq = pq_;
    pq.reserve((P + 1) * (P + 1));
    pq.push_back({0, 0});  // v0 (-1,-1)
    pq.push_back({P, 0});  // v1 ( 1,-1)
    pq.push_back({P, P});  // v2 ( 1, 1)
    pq.push_back({0, P});  // v3 (-1, 1)
    for (std::size_t j = 1; j < P; ++j) pq.push_back({j, 0});  // e0: v0->v1
    for (std::size_t j = 1; j < P; ++j) pq.push_back({P, j});  // e1: v1->v2
    for (std::size_t j = 1; j < P; ++j) pq.push_back({j, P});  // e2: v3->v2
    for (std::size_t j = 1; j < P; ++j) pq.push_back({0, j});  // e3: v0->v3
    for (std::size_t p = 1; p < P; ++p)
        for (std::size_t q = 1; q < P; ++q) pq.push_back({p, q});

    const std::size_t nm = pq.size();
    const std::size_t nq = nq1d * nq1d;

    // 1-D factorisation for sum-factorised operator evaluation.
    tb_.nq1d = nq1d;
    tb_.nm1d = P + 1;
    tb_.b1 = la::DenseMatrix(nq1d, P + 1);
    tb_.d1 = la::DenseMatrix(nq1d, P + 1);
    tb_.pq = pq;
    tb_.w1d = rule.weights;
    for (std::size_t qi = 0; qi < nq1d; ++qi) {
        for (std::size_t p = 0; p <= P; ++p) {
            tb_.b1(qi, p) = modal_basis(p, P, rule.points[qi]);
            tb_.d1(qi, p) = modal_basis_derivative(p, P, rule.points[qi]);
        }
    }

    basis_ = la::DenseMatrix(nq, nm);
    dxi1_ = la::DenseMatrix(nq, nm);
    dxi2_ = la::DenseMatrix(nq, nm);
    weights_.resize(nq);
    xi1_.resize(nq);
    xi2_.resize(nq);

    for (std::size_t qj = 0; qj < nq1d; ++qj) {
        for (std::size_t qi = 0; qi < nq1d; ++qi) {
            const std::size_t q = qj * nq1d + qi;
            const double z1 = rule.points[qi];
            const double z2 = rule.points[qj];
            xi1_[q] = z1;
            xi2_[q] = z2;
            weights_[q] = rule.weights[qi] * rule.weights[qj];
            for (std::size_t m = 0; m < nm; ++m) {
                const auto [p, qq] = pq[m];
                const double f = modal_basis(p, P, z1);
                const double g = modal_basis(qq, P, z2);
                const double df = modal_basis_derivative(p, P, z1);
                const double dg = modal_basis_derivative(qq, P, z2);
                basis_(q, m) = f * g;
                dxi1_(q, m) = df * g;
                dxi2_(q, m) = f * dg;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Triangle (collapsed coordinates)
// ---------------------------------------------------------------------------

namespace detail {

/// A 1-D factor of a collapsed-coordinate mode: value and derivative.
struct TriFactor {
    std::function<double(double)> f;
    std::function<double(double)> df;
};

} // namespace detail

namespace {

using Fn1d = detail::TriFactor;

Fn1d h0() {
    return {[](double z) { return 0.5 * (1.0 - z); }, [](double) { return -0.5; }};
}
Fn1d h1() {
    return {[](double z) { return 0.5 * (1.0 + z); }, [](double) { return 0.5; }};
}
Fn1d one() {
    return {[](double) { return 1.0; }, [](double) { return 0.0; }};
}
/// The 1-D bubble psi_j = h0 h1 P^{1,1}_{j-1} (degree j+1).
Fn1d bubble(std::size_t j, std::size_t order) {
    return {[j, order](double z) { return modal_basis(j, order, z); },
            [j, order](double z) { return modal_basis_derivative(j, order, z); }};
}
/// (h0(z))^k.
Fn1d h0pow(std::size_t k) {
    return {[k](double z) { return std::pow(0.5 * (1.0 - z), static_cast<double>(k)); },
            [k](double z) {
                if (k == 0) return 0.0;
                return -0.5 * static_cast<double>(k) *
                       std::pow(0.5 * (1.0 - z), static_cast<double>(k - 1));
            }};
}
/// (h0)^k h1 P^{a,1}_{q-1}: the eta_2 factor of edge (k=1,a=1) and interior
/// (k=p+1, a=2p+1) modes.
Fn1d h0k_h1_jac(std::size_t k, double a, std::size_t q) {
    return {[k, a, q](double z) {
                return std::pow(0.5 * (1.0 - z), static_cast<double>(k)) * 0.5 * (1.0 + z) *
                       jacobi(q - 1, a, 1.0, z);
            },
            [k, a, q](double z) {
                const double p0 = std::pow(0.5 * (1.0 - z), static_cast<double>(k));
                const double dp0 = k == 0 ? 0.0
                                          : -0.5 * static_cast<double>(k) *
                                                std::pow(0.5 * (1.0 - z),
                                                         static_cast<double>(k - 1));
                const double p1 = 0.5 * (1.0 + z);
                const double j = jacobi(q - 1, a, 1.0, z);
                const double dj = jacobi_derivative(q - 1, a, 1.0, z);
                return dp0 * p1 * j + p0 * 0.5 * j + p0 * p1 * dj;
            }};
}

} // namespace

TriExpansion::TriExpansion(std::size_t order, std::size_t nq1d)
    : Expansion(Shape::Triangle, order) {
    if (order < 1) throw std::invalid_argument("TriExpansion: order must be >= 1");
    const std::size_t P = order;
    if (nq1d == 0) nq1d = P + 2;
    const QuadratureRule r1 = gauss_legendre(nq1d);       // eta_1
    const QuadratureRule r2 = gauss_jacobi(nq1d, 1.0, 0.0); // eta_2, weight (1-z)

    // Each mode is f(eta1) * g(eta2).  The h0(eta2)^d factor, with d the
    // eta1-degree of f, keeps every mode polynomial in (xi1, xi2).
    std::vector<std::pair<Fn1d, Fn1d>>& modes = modes_;
    modes.emplace_back(h0(), h0());   // v0 (-1,-1)
    modes.emplace_back(h1(), h0());   // v1 ( 1,-1)
    modes.emplace_back(one(), h1());  // v2 (-1, 1): the collapsed vertex
    for (std::size_t j = 1; j < P; ++j)  // e0: v0->v1 (bottom)
        modes.emplace_back(bubble(j, P), h0pow(j + 1));
    for (std::size_t j = 1; j < P; ++j)  // e1: v1->v2 (hypotenuse)
        modes.emplace_back(h1(), h0k_h1_jac(1, 1.0, j));
    for (std::size_t j = 1; j < P; ++j)  // e2: v0->v2 (left)
        modes.emplace_back(h0(), h0k_h1_jac(1, 1.0, j));
    for (std::size_t p = 1; p + 1 < P; ++p)
        for (std::size_t q = 1; p + q + 1 <= P; ++q)
            modes.emplace_back(bubble(p, P),
                               h0k_h1_jac(p + 1, 2.0 * static_cast<double>(p) + 1.0, q));

    const std::size_t nm = modes.size();
    assert(nm == 3 + 3 * (P - 1) + (P - 1) * (P - 2) / 2);
    const std::size_t nq = nq1d * nq1d;
    basis_ = la::DenseMatrix(nq, nm);
    dxi1_ = la::DenseMatrix(nq, nm);
    dxi2_ = la::DenseMatrix(nq, nm);
    weights_.resize(nq);
    xi1_.resize(nq);
    xi2_.resize(nq);

    for (std::size_t qj = 0; qj < nq1d; ++qj) {
        for (std::size_t qi = 0; qi < nq1d; ++qi) {
            const std::size_t q = qj * nq1d + qi;
            const double e1 = r1.points[qi];
            const double e2 = r2.points[qj];
            // Duffy map: xi1 = (1+eta1)(1-eta2)/2 - 1, xi2 = eta2.
            xi1_[q] = 0.5 * (1.0 + e1) * (1.0 - e2) - 1.0;
            xi2_[q] = e2;
            // r2's weight already contains the (1-eta2) Jacobian factor;
            // the remaining 1/2 completes dxi = (1-eta2)/2 deta.
            weights_[q] = 0.5 * r1.weights[qi] * r2.weights[qj];
            const double inv = 1.0 / (1.0 - e2); // e2 < 1 strictly (Gauss pts)
            for (std::size_t m = 0; m < nm; ++m) {
                const auto& [ff, gg] = modes[m];
                const double f = ff.f(e1);
                const double df = ff.df(e1);
                const double g = gg.f(e2);
                const double dg = gg.df(e2);
                basis_(q, m) = f * g;
                // d/dxi1 = 2/(1-eta2) d/deta1
                dxi1_(q, m) = 2.0 * inv * df * g;
                // d/dxi2 = (1+eta1)/(1-eta2) d/deta1 + d/deta2
                dxi2_(q, m) = (1.0 + e1) * inv * df * g + f * dg;
            }
        }
    }
}

double QuadExpansion::eval_mode(std::size_t m, double x1, double x2) const {
    const auto [p, q] = pq_[m];
    return modal_basis(p, order_, x1) * modal_basis(q, order_, x2);
}

std::array<double, 2> QuadExpansion::eval_mode_deriv(std::size_t m, double x1,
                                                     double x2) const {
    const auto [p, q] = pq_[m];
    const double f = modal_basis(p, order_, x1);
    const double g = modal_basis(q, order_, x2);
    return {modal_basis_derivative(p, order_, x1) * g,
            f * modal_basis_derivative(q, order_, x2)};
}

TriExpansion::~TriExpansion() = default;

namespace {
/// Inverse Duffy map with a clamp away from the collapsed vertex.
std::pair<double, double> to_eta(double x1, double x2) {
    const double e2 = std::min(x2, 1.0 - 1e-12);
    const double e1 = 2.0 * (1.0 + x1) / (1.0 - e2) - 1.0;
    return {e1, e2};
}
} // namespace

double TriExpansion::eval_mode(std::size_t m, double x1, double x2) const {
    const auto [e1, e2] = to_eta(x1, x2);
    return modes_[m].first.f(e1) * modes_[m].second.f(e2);
}

std::array<double, 2> TriExpansion::eval_mode_deriv(std::size_t m, double x1,
                                                    double x2) const {
    const auto [e1, e2] = to_eta(x1, x2);
    const double f = modes_[m].first.f(e1);
    const double df = modes_[m].first.df(e1);
    const double g = modes_[m].second.f(e2);
    const double dg = modes_[m].second.df(e2);
    const double inv = 1.0 / (1.0 - e2);
    return {2.0 * inv * df * g, (1.0 + e1) * inv * df * g + f * dg};
}

std::shared_ptr<const Expansion> make_expansion(Shape shape, std::size_t order) {
    static std::mutex mtx;
    static std::map<std::pair<Shape, std::size_t>, std::shared_ptr<const Expansion>> cache;
    std::lock_guard lk(mtx);
    auto& slot = cache[{shape, order}];
    if (!slot) {
        if (shape == Shape::Quad)
            slot = std::make_shared<QuadExpansion>(order);
        else
            slot = std::make_shared<TriExpansion>(order);
    }
    return slot;
}

} // namespace spectral
