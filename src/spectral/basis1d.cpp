#include "spectral/basis1d.hpp"

#include <cassert>

#include "spectral/jacobi.hpp"

namespace spectral {

double modal_basis(std::size_t p, std::size_t order, double z) noexcept {
    assert(p <= order);
    if (p == 0) return 0.5 * (1.0 - z);
    if (p == order) return 0.5 * (1.0 + z);
    return 0.25 * (1.0 - z) * (1.0 + z) * jacobi(p - 1, 1.0, 1.0, z);
}

double modal_basis_derivative(std::size_t p, std::size_t order, double z) noexcept {
    assert(p <= order);
    if (p == 0) return -0.5;
    if (p == order) return 0.5;
    const double pj = jacobi(p - 1, 1.0, 1.0, z);
    const double dpj = jacobi_derivative(p - 1, 1.0, 1.0, z);
    return -0.5 * z * pj + 0.25 * (1.0 - z * z) * dpj;
}

} // namespace spectral
