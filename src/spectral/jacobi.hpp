#pragma once

#include <cstddef>
#include <vector>

/// \file jacobi.hpp
/// Jacobi polynomials and Gauss-type quadrature.
///
/// The spectral/hp expansion bases of Karniadakis & Sherwin (1999) are built
/// from Jacobi polynomials P_n^{alpha,beta}; the triangle's collapsed
/// coordinate direction needs Gauss-Jacobi rules with alpha = 1 or 2 so the
/// (1-eta)^alpha geometric factor is absorbed into the quadrature weight.
namespace spectral {

/// P_n^{alpha,beta}(x) via the three-term recurrence.
[[nodiscard]] double jacobi(std::size_t n, double alpha, double beta, double x) noexcept;

/// d/dx P_n^{alpha,beta}(x) = (n+alpha+beta+1)/2 * P_{n-1}^{alpha+1,beta+1}(x).
[[nodiscard]] double jacobi_derivative(std::size_t n, double alpha, double beta,
                                       double x) noexcept;

/// A quadrature rule on [-1, 1].
struct QuadratureRule {
    std::vector<double> points;
    std::vector<double> weights;
    [[nodiscard]] std::size_t size() const noexcept { return points.size(); }
};

/// n-point Gauss-Jacobi rule: exact for w(x) * p(x) with deg p <= 2n-1,
/// w(x) = (1-x)^alpha (1+x)^beta.
[[nodiscard]] QuadratureRule gauss_jacobi(std::size_t n, double alpha, double beta);

/// n-point Gauss-Lobatto-Jacobi rule (endpoints included): exact to 2n-3.
[[nodiscard]] QuadratureRule gauss_lobatto_jacobi(std::size_t n, double alpha, double beta);

/// Convenience Legendre (alpha = beta = 0) versions.
[[nodiscard]] inline QuadratureRule gauss_legendre(std::size_t n) {
    return gauss_jacobi(n, 0.0, 0.0);
}
[[nodiscard]] inline QuadratureRule gauss_lobatto(std::size_t n) {
    return gauss_lobatto_jacobi(n, 0.0, 0.0);
}

} // namespace spectral
