/// Table 2: parallel NekTar-F CPU/wall-clock seconds per time step of the
/// turbulent bluff-body simulation, for P = 2..128 processors on seven
/// systems.  Weak scaling exactly as in the paper: the number of Fourier
/// planes grows with P so that every processor always holds 2 planes (one
/// complex mode); per-step timings should therefore stay flat on a perfect
/// network.  Shapes to reproduce: ethernet saturates above ~4-8 processors
/// (wall-clock diverging from CPU), Myrinet stays competitive to ~64, and
/// the vendor networks stay flat.
#include <cstdio>
#include <map>
#include <memory>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"

namespace {

struct RunData {
    perf::StageBreakdown bd;       ///< steady-state steps only
    simmpi::CommLog log;           ///< cumulative (normalised separately)
    double comm_groups = 1.0;      ///< nonlinear evaluations covered by log
    double hidden_seconds = 0.0;   ///< probe-priced comm hidden behind compute
    std::size_t field_bytes = 0;
    std::size_t solver_bytes = 0;
};

netsim::NetworkModel probe_net() {
    netsim::NetworkModel probe; // any model; timings are re-priced later
    probe.name = "probe";
    probe.latency_us = 10.0;
    probe.bandwidth_mbps = 100.0;
    return probe;
}

RunData run_fourier(int nprocs, bool overlap, bool trace = false) {
    mesh::BluffBodyParams p;
    p.n_upstream = 4;
    p.n_wake = 6;
    p.n_body = 2;
    p.n_side = 3;
    const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));

    RunData data;
    const int bootstrap = 1, steady = 2;
    simmpi::World world(nprocs, probe_net());
    std::vector<perf::StageBreakdown> bds(static_cast<std::size_t>(nprocs));
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
        nektar::FourierNsOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.01;
        opts.num_modes = static_cast<std::size_t>(c.size()); // 2 planes per proc
        opts.overlap_transpose = overlap;
        opts.trace = trace;
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_initial([](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                       [](double, double, double) { return 0.0; },
                       [](double, double, double z) { return 0.05 * std::cos(z); });
        for (int s = 0; s < bootstrap; ++s) ns.step();
        ns.breakdown() = {};
        for (int s = 0; s < steady; ++s) ns.step();
        bds[static_cast<std::size_t>(c.rank())] = ns.breakdown();
        if (c.rank() == 0) {
            data.field_bytes = 2 * disc->quad_size() * sizeof(double);
            data.solver_bytes = disc->dofmap().num_global() *
                                (disc->dofmap().bandwidth() + 1) * sizeof(double);
        }
    });
    data.bd = bds[0];
    data.log = reports[0].log;
    for (const auto& [stage, hidden] : reports[0].overlap_log) {
        data.bd.add_comm_overlap(static_cast<std::size_t>(stage), hidden);
        data.hidden_seconds += hidden;
    }
    // The log covers set_initial's nonlinear evaluation plus every step.
    data.comm_groups = static_cast<double>(1 + bootstrap + steady);
    return data;
}

const std::vector<app_model::Platform>& platforms() {
    static const std::vector<app_model::Platform> p = {
        {"AP3000", "AP3000", "AP3000"},
        {"NCSA", "NCSA", "NCSA"},
        {"SP2 Silver", "SP2-Silver", "SP2-Silver internode"},
        {"SP2 Thin2", "SP2-Thin2", "SP2-thin2"},
        {"RoadRunner eth.", "RoadRunner", "RoadRunner eth."},
        {"RoadRunner myr.", "RoadRunner", "RoadRunner myr."},
        {"Muses", "Muses", "Muses"},
    };
    return p;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("table2_nektar_f", argc, argv);
    std::printf("Table 2: NekTar-F bluff-body run, CPU/wall-clock seconds per step.\n");
    std::printf("Weak scaling: 2 Fourier planes per processor (paper: 461k dof/proc\n");
    std::printf("class workload; here a reduced mesh, same algorithm and comm pattern).\n\n");

    // Paper's P=4 row for orientation.
    std::printf("Paper, P=4: AP3000 4.52/4.59  NCSA 4.96/4.99  Silver 5.94/5.96  "
                "Thin2 5.91/5.98\n            RR-eth 6.99/8.27  RR-myr 4.15/4.15  "
                "Muses 5.59/6.2\n\n");

    std::vector<app_model::Platform> selected;
    for (const auto& pl : platforms())
        if (cli.machine_selected(pl.machine) && cli.net_selected(pl.network))
            selected.push_back(pl);
    if (selected.empty()) {
        std::fprintf(stderr, "table2_nektar_f: no platform matches the given "
                             "--machine/--net filters\n");
        return 2;
    }

    std::vector<std::string> headers = {"P"};
    for (const auto& pl : selected) headers.push_back(pl.label);
    benchutil::Table table(headers, 17);
    table.print_header();

    perf::RunReport rep = perf::report("table2_nektar_f");
    perf::StageBreakdown last_bd;
    std::size_t last_field_bytes = 0, last_solver_bytes = 0;
    bool traced = false; // --trace records the first (smallest-P) run only
    for (int nprocs : cli.rank_sweep({2, 4, 8, 16, 32, 64})) {
        const bool trace_this = cli.trace && !traced;
        const RunData data = run_fourier(nprocs, /*overlap=*/false, trace_this);
        last_field_bytes = data.field_bytes;
        last_solver_bytes = data.solver_bytes;
        // Stop recording after the dedicated traced run so the Perfetto file
        // holds exactly one clean sweep (the comm-layer spans are gated only
        // by the global tracer, not per-run).
        if (trace_this) obs::tracer().disable();
        traced = true;
        last_bd = data.bd;
        const auto shapes = app_model::solver_shapes(data.field_bytes, data.solver_bytes);
        std::vector<std::string> row = {std::to_string(nprocs)};
        for (const auto& pl : selected) {
            // Muses is a 4-PC cluster; the paper has n/a beyond P=4.
            if (pl.label == "Muses" && nprocs > 4) {
                row.push_back("n/a");
                continue;
            }
            const auto& m = machine::by_name(pl.machine);
            const auto& net = netsim::by_name(pl.network);
            const auto comp = app_model::compute_stage_seconds(data.bd, m, shapes);
            double cpu = 0.0;
            for (std::size_t s = 1; s <= perf::kNumStages; ++s) cpu += comp[s];
            cpu /= data.bd.steps;
            const double comm = simmpi::price_log(data.log, net, nprocs) /
                                data.comm_groups;
            const double wall = cpu + comm;
            const double cpu_total = cpu + comm * net.cpu_poll_fraction;
            row.push_back(benchutil::fmt(cpu_total, "%.2f") + "/" +
                          benchutil::fmt(wall, "%.2f"));
            perf::Case kase;
            kase.labels["platform"] = pl.label;
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["cpu_seconds_per_step"] = cpu_total;
            kase.values["wall_seconds_per_step"] = wall;
            kase.values["comm_seconds_per_step"] = comm;
            rep.cases.push_back(std::move(kase));
        }
        table.print_row(row);
    }
    std::printf("\n(values are predicted 1999-machine seconds for the reduced workload;\n"
                "compare trends across P and platforms with the paper's Table 2)\n");

    // GPU-era projection: the same instrumented per-rank step, priced on
    // accelerator-class rooflines (device HBM as memory, a priced PCIe-class
    // host link).  The staged column is the 1999 lesson replayed: a solver
    // that crosses the link every kernel loses to the link, not the device.
    std::printf("\nGPU-era projection (per-rank seconds/step on accelerator rooflines;\n"
                "device = fields resident in HBM, resident = +2 field crossings/step,\n"
                "staged = +2 crossings per stage over the host link)\n\n");
    {
        const auto shapes = app_model::solver_shapes(last_field_bytes, last_solver_bytes);
        benchutil::Table at({"accelerator", "device", "resident", "staged"}, 14);
        at.print_header();
        for (const auto& acc : machine::accelerator_roster()) {
            const auto proj =
                app_model::project_accelerated(last_bd, acc, shapes, last_field_bytes);
            at.print_row({acc.name, benchutil::fmt(proj.device, "%.3g"),
                          benchutil::fmt(proj.resident, "%.3g"),
                          benchutil::fmt(proj.staged, "%.3g")});
            perf::Case kase;
            kase.labels["accelerator"] = acc.name;
            kase.values["device_seconds_per_step"] = proj.device;
            kase.values["resident_seconds_per_step"] = proj.resident;
            kase.values["staged_seconds_per_step"] = proj.staged;
            rep.cases.push_back(std::move(kase));
        }
    }

    // Overlap ablation: the pipelined transpose (isend/irecv slices of the
    // alltoall overlapped against the z-line FFT work) against the blocking
    // exchange.  Only networks whose MPI stack frees the CPU during
    // transfers (cpu_poll_fraction < 1) can recover wall time.
    std::printf("\nCommunication/computation overlap in the nonlinear transposes\n");
    std::printf("(blocking vs overlapped CPU/wall s per step; 'recov' = wall seconds\n"
                "recovered per step = hidden fraction x comm price x (1 - poll))\n\n");
    for (int nprocs : {4, 16}) {
        const RunData blk = run_fourier(nprocs, /*overlap=*/false);
        const RunData ovl = run_fourier(nprocs, /*overlap=*/true);
        const auto shapes = app_model::solver_shapes(ovl.field_bytes, ovl.solver_bytes);
        const double rho = app_model::overlap_efficiency(
            ovl.hidden_seconds,
            simmpi::price_log_split(ovl.log, probe_net(), nprocs).overlapped);
        std::printf("P = %d  (hidden fraction of overlapped comm: %.0f%%)\n", nprocs,
                    100.0 * rho);
        benchutil::Table table2({"network", "blocking", "overlapped", "recov"}, 16);
        table2.print_header();
        for (const auto& pl : selected) {
            if (pl.label == "Muses" && nprocs > 4) continue;
            const auto& m = machine::by_name(pl.machine);
            const auto& net = netsim::by_name(pl.network);
            const auto comp = app_model::compute_stage_seconds(ovl.bd, m, shapes);
            double cpu = 0.0;
            for (std::size_t s = 1; s <= perf::kNumStages; ++s) cpu += comp[s];
            cpu /= ovl.bd.steps;
            const double comm_blk =
                simmpi::price_log(blk.log, net, nprocs) / blk.comm_groups;
            const auto split = simmpi::price_log_split(ovl.log, net, nprocs);
            const double comm_ovl = split.total() / ovl.comm_groups;
            const double recov = app_model::recovered_seconds(
                rho, split.overlapped / ovl.comm_groups, net.cpu_poll_fraction);
            const double wall_blk = cpu + comm_blk;
            const double wall_ovl = cpu + comm_ovl - recov;
            table2.print_row(
                {pl.label,
                 benchutil::fmt(cpu + comm_blk * net.cpu_poll_fraction, "%.2f") + "/" +
                     benchutil::fmt(wall_blk, "%.2f"),
                 benchutil::fmt(cpu + comm_ovl * net.cpu_poll_fraction, "%.2f") + "/" +
                     benchutil::fmt(wall_ovl, "%.2f"),
                 benchutil::fmt(recov, "%.2f")});
            perf::Case kase;
            kase.labels["platform"] = pl.label;
            kase.labels["ablation"] = "overlap_transpose";
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["hidden_fraction"] = rho;
            kase.values["blocking_wall_seconds_per_step"] = wall_blk;
            kase.values["overlapped_wall_seconds_per_step"] = wall_ovl;
            kase.values["recovered_seconds_per_step"] = recov;
            rep.cases.push_back(std::move(kase));
        }
        std::printf("\n");
    }
    // Stage rows come from the last Table-2 sweep run; the cases collected
    // above carry the per-platform numbers.
    perf::RunReport out = perf::report("table2_nektar_f", &last_bd);
    out.cases = std::move(rep.cases);
    cli.finish(std::move(out));
    return 0;
}
