/// Figure 3: speed of ddot in MFlop/s against array size.
#include "blas_sweep.hpp"

int main() {
    const blas_sweep::Kernel k{"Figure 3", "ddot", "Mflop/sec", false, machine::shape_ddot,
                               blas_sweep::host_rate_ddot};
    blas_sweep::run(k, blas_sweep::level1_sizes());
    return 0;
}
