/// Ablation: the two design choices behind the paper's fast direct solves —
/// RCM bandwidth reduction and boundary-first ordering / static condensation
/// (Figure 10).  Prints system size, half-bandwidth, factor and per-solve
/// flop counts for (a) natural ordering, (b) RCM, (c) RCM + static
/// condensation, on the bluff-body mesh.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/helmholtz.hpp"
#include "nektar/static_condensation.hpp"

namespace {

double factor_flops(std::size_t n, std::size_t kd) {
    // Banded Cholesky ~ n * kd^2 flops.
    return static_cast<double>(n) * static_cast<double>(kd) * static_cast<double>(kd);
}
double solve_flops(std::size_t n, std::size_t kd) { return 4.0 * static_cast<double>(n * (kd + 1)); }

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("ablation_rcm_condensation", argc, argv);
    mesh::BluffBodyParams p;
    p.n_upstream = 5;
    p.n_wake = 8;
    p.n_body = 2;
    p.n_side = 3;
    const auto base = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));

    std::printf("Ablation: orderings and static condensation for the banded direct "
                "solver (Figure 10's design space)\n\n");
    benchutil::Table table({"order P", "variant", "dofs", "halfband", "factor Mflop",
                            "solve Mflop"},
                           14);
    table.print_header();
    perf::RunReport rep = perf::report("ablation_rcm_condensation");
    for (std::size_t order : {4u, 6u, 8u}) {
        const auto natural = std::make_shared<nektar::Discretization>(base, order, false);
        const auto rcm = std::make_shared<nektar::Discretization>(base, order, true);
        const nektar::HelmholtzBC bc{.dirichlet = {mesh::BoundaryTag::Inflow,
                                                   mesh::BoundaryTag::Body}};
        nektar::CondensedHelmholtz cond(rcm, 1.0, bc);

        const auto row = [&](const char* name, std::size_t n, std::size_t kd) {
            table.print_row({std::to_string(order), name, std::to_string(n),
                             std::to_string(kd), benchutil::fmt(factor_flops(n, kd) / 1e6),
                             benchutil::fmt(solve_flops(n, kd) / 1e6, "%.3f")});
            perf::Case kase;
            kase.labels["variant"] = name;
            kase.values["order"] = static_cast<double>(order);
            kase.values["dofs"] = static_cast<double>(n);
            kase.values["halfband"] = static_cast<double>(kd);
            kase.values["factor_mflop"] = factor_flops(n, kd) / 1e6;
            kase.values["solve_mflop"] = solve_flops(n, kd) / 1e6;
            rep.cases.push_back(std::move(kase));
        };
        row("natural", natural->dofmap().num_global(), natural->dofmap().bandwidth());
        row("RCM", rcm->dofmap().num_global(), rcm->dofmap().bandwidth());
        row("RCM+condensed", cond.boundary_dofs(), cond.bandwidth());
    }
    std::printf("\nRCM cuts the half-bandwidth; condensation then removes every\n"
                "interior mode from the global system — together they are why the\n"
                "paper's 'direct solver, utilising the symmetric and banded nature\n"
                "of the matrix' carries 60%% of each DNS step so cheaply.\n");
    cli.finish(std::move(rep));
    return 0;
}
