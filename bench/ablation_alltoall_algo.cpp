/// Ablation: Alltoall schedule choice per network.  The pairwise exchange
/// (what vendor MPIs of the era used on switches) against Bruck's log-round
/// algorithm (what a latency-bound ethernet cluster would prefer for small
/// messages).  Prints the predicted collective time for both across message
/// sizes and the crossover point.
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/netmodel.hpp"

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("ablation_alltoall_algo", argc, argv);
    const int nprocs = cli.request.ranks > 0 ? cli.request.ranks : 16;
    std::printf("Ablation: MPI_Alltoall schedule, pairwise vs Bruck, P = %d\n\n", nprocs);
    perf::RunReport rep = perf::report("ablation_alltoall_algo");
    rep.meta["nprocs"] = std::to_string(nprocs);
    for (const char* name : {"Muses", "RoadRunner eth.", "RoadRunner myr.", "T3E"}) {
        if (!cli.net_selected(name)) continue;
        const auto& net = netsim::by_name(name);
        std::printf("%s (latency %.0f us, bandwidth %.1f MB/s)\n", name, net.latency_us,
                    net.bandwidth_mbps);
        benchutil::Table table({"msg bytes", "pairwise ms", "Bruck ms", "winner"}, 14);
        table.print_header();
        std::size_t crossover = 0;
        for (std::size_t m = 8; m <= (1u << 20); m *= 4) {
            const double tp = net.alltoall_seconds(nprocs, m) * 1e3;
            const double tb = net.alltoall_seconds_bruck(nprocs, m) * 1e3;
            if (tb < tp) crossover = m;
            table.print_row({std::to_string(m), benchutil::fmt(tp, "%.3f"),
                             benchutil::fmt(tb, "%.3f"), tb < tp ? "Bruck" : "pairwise"});
            perf::Case kase;
            kase.labels["network"] = name;
            kase.values["msg_bytes"] = static_cast<double>(m);
            kase.values["pairwise_ms"] = tp;
            kase.values["bruck_ms"] = tb;
            kase.labels["winner"] = tb < tp ? "Bruck" : "pairwise";
            rep.cases.push_back(std::move(kase));
        }
        if (crossover)
            std::printf("  -> Bruck wins up to ~%zu-byte messages on this network.\n\n",
                        crossover);
        else
            std::printf("  -> pairwise wins at every size on this network.\n\n");
    }
    std::printf("High-latency links (the PC clusters) benefit from fewer rounds at\n"
                "small sizes; bandwidth-rich fabrics always prefer pairwise.  This is\n"
                "the free-MPI tuning space (MPICH vs LAM) the paper alludes to.\n");
    cli.finish(std::move(rep));
    return 0;
}
