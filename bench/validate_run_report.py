#!/usr/bin/env python3
"""Validate RunReport JSON files against bench/run_report_schema.json.

The CI container has no jsonschema package, so this implements the small
subset of JSON Schema the committed schema actually uses: type (including
type lists), required, properties, additionalProperties (false or a schema),
items, const, minimum, minLength.  Fail loudly on any schema keyword outside
that subset rather than silently skipping it.

Unknown keys (a key the schema's additionalProperties: false would reject)
are *warnings* by default and failures only under --strict: reports are an
additive contract, so a newer binary emitting an extra field must not break
an older checkout's gate, while CI — whose schema and binaries move together
— runs --strict and catches schema drift immediately.  Wrong types, missing
required keys and constraint violations are always failures.

Usage:
  validate_run_report.py --schema bench/run_report_schema.json report.json ...
  validate_run_report.py --schema bench/run_report_schema.json --strict ...
  validate_run_report.py --schema bench/run_report_schema.json --self-test
"""

from __future__ import annotations

import argparse
import copy
import json
import sys

HANDLED = {"$schema", "title", "description", "type", "required", "properties",
           "additionalProperties", "items", "const", "minimum", "minLength"}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def check_type(value, expected: str) -> bool:
    if expected == "number" and isinstance(value, bool):
        return False  # bool is an int subclass in Python; JSON says otherwise
    return isinstance(value, TYPES[expected])


def validate(value, schema: dict, path: str, errors: list[str],
             warnings: list[str] | None = None) -> None:
    """Appends constraint violations to `errors` and unknown keys to
    `warnings` (pass warnings=errors to make unknown keys fatal)."""
    if warnings is None:
        warnings = errors
    unknown = set(schema) - HANDLED
    if unknown:
        raise SystemExit(f"schema uses unsupported keywords at {path or '$'}: "
                         f"{sorted(unknown)} (extend validate_run_report.py)")

    if "type" in schema:
        expected = schema["type"]
        expected = expected if isinstance(expected, list) else [expected]
        if not any(check_type(value, t) for t in expected):
            errors.append(f"{path or '$'}: expected {' or '.join(expected)}, "
                          f"got {type(value).__name__}")
            return

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path or '$'}: expected constant {schema['const']!r}, got {value!r}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path or '$'}: {value} below minimum {schema['minimum']}")
    if "minLength" in schema and isinstance(value, str) and len(value) < schema["minLength"]:
        errors.append(f"{path or '$'}: string shorter than {schema['minLength']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path or '$'}: missing required key \"{key}\"")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors, warnings)
            elif extra is False:
                warnings.append(f"{path or '$'}: unknown key \"{key}\"")
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors, warnings)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors, warnings)


def case_identity(case: dict) -> tuple:
    """A case's identity: its string-valued entries (labels) plus its
    exact-integer numeric entries (sweep coordinates like nprocs or stage).
    Measured floats are excluded — they are results, not coordinates."""
    ident = []
    for key in sorted(case):
        value = case[key]
        if isinstance(value, str):
            ident.append((key, value))
        elif isinstance(value, (int, float)) and not isinstance(value, bool) \
                and float(value).is_integer():
            ident.append((key, int(value)))
    return tuple(ident)


def check_duplicate_cases(doc, warnings: list[str]) -> None:
    """Two cases with the same identity silently shadow each other in every
    consumer that keys cases by labels (compare_bench.py's dict comprehension
    is last-wins) — warn, and fail under --strict."""
    cases = doc.get("cases") if isinstance(doc, dict) else None
    if not isinstance(cases, list):
        return
    seen: dict = {}
    for i, case in enumerate(cases):
        if not isinstance(case, dict):
            continue
        ident = case_identity(case)
        if not ident:
            continue
        if ident in seen:
            warnings.append(f".cases[{i}]: duplicate case (same labels and integer "
                            f"coordinates as .cases[{seen[ident]}]: {dict(ident)})")
        else:
            seen[ident] = i


def validate_file(path: str, schema: dict) -> tuple[list[str], list[str]]:
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return [f"not valid JSON: {e}"], []
    errors: list[str] = []
    warnings: list[str] = []
    validate(doc, schema, "", errors, warnings)
    check_duplicate_cases(doc, warnings)
    return errors, warnings


GOOD = {
    "schema_version": 2,
    "bench": "self_test",
    "backend": "dense+sumfact",
    "crossover_order": 8,
    "request": {"bench": "self_test", "fidelity": "model", "machine": "NCSA",
                "net": "NCSA", "ranks": 8, "schema": 1, "seed": 0, "smoke": False,
                "backend": "", "fault": "", "solver": "", "transpose": "",
                "dof_per_rank": 461000.0, "steps": 0},
    "cache": {"hit": False, "store_key": "00f1e2d3c4b5a697"},
    "meta": {"threads": "1", "smoke": "1", "trace": "0"},
    "steps": 2,
    "stages": [{"stage": 1, "name": "transform", "group": "a", "flops": 10.0,
                "bytes": 80.0, "calls": 1, "host_seconds": 0.01,
                "fault_seconds": 0.0, "overlap_seconds": 0.0, "retransmits": 0}],
    "metrics": {"counters": {"ops.flops": 10.0}, "gauges": {},
                "histograms": {"h": {"count": 1, "sum": 2.0, "min": 2.0,
                                     "max": 2.0, "buckets": {"1": 1}}}},
    "cases": [{"platform": "NCSA", "wall_s": 4.96}],
}


def self_test(schema: dict) -> int:
    errors: list[str] = []
    warnings: list[str] = []
    validate(GOOD, schema, "", errors, warnings)
    if errors or warnings:
        print("self-test FAILED: known-good report rejected:")
        for e in errors + warnings:
            print(f"  - {e}")
        return 1
    broken = [
        ("missing bench", lambda d: d.pop("bench")),
        ("wrong schema_version", lambda d: d.update(schema_version=99)),
        ("non-string backend", lambda d: d.update(backend=2)),
        ("negative crossover_order", lambda d: d.update(crossover_order=-1)),
        ("missing request block", lambda d: d.pop("request")),
        ("wrong request schema", lambda d: d["request"].update(schema=7)),
        ("missing cache block", lambda d: d.pop("cache")),
        ("non-boolean cache hit", lambda d: d["cache"].update(hit="yes")),
        ("non-string meta value", lambda d: d["meta"].update(threads=1)),
        ("negative stage seconds", lambda d: d["stages"][0].update(host_seconds=-1.0)),
        ("non-scalar case value", lambda d: d["cases"][0].update(bad=[1, 2])),
    ]
    for label, mutate in broken:
        doc = copy.deepcopy(GOOD)
        mutate(doc)
        errs: list[str] = []
        warns: list[str] = []
        validate(doc, schema, "", errs, warns)
        if not errs:
            print(f"self-test FAILED: mutation \"{label}\" was not flagged")
            return 1
    # Unknown keys: warning by default, error only when the caller folds
    # warnings into errors (--strict).
    extra = copy.deepcopy(GOOD)
    extra["future_field"] = "hello"
    errs, warns = [], []
    validate(extra, schema, "", errs, warns)
    if errs or not warns:
        print("self-test FAILED: unknown top-level key should warn, not error "
              f"(errors={errs}, warnings={warns})")
        return 1
    errs = []
    validate(extra, schema, "", errs, errs)  # --strict folds the lists
    if not errs:
        print("self-test FAILED: unknown key not fatal under strict mode")
        return 1
    # Duplicate cases: same labels + integer coordinates twice.  Warning by
    # default (the lists differ), fatal under --strict (they are folded).
    dup = copy.deepcopy(GOOD)
    dup["cases"] = [{"platform": "NCSA", "nprocs": 4, "wall_s": 4.96},
                    {"platform": "NCSA", "nprocs": 8, "wall_s": 5.10},
                    {"platform": "NCSA", "nprocs": 4, "wall_s": 9.99}]
    errs, warns = [], []
    validate(dup, schema, "", errs, warns)
    check_duplicate_cases(dup, warns)
    if errs or len(warns) != 1:
        print("self-test FAILED: duplicate case should warn exactly once "
              f"(errors={errs}, warnings={warns})")
        return 1
    distinct = copy.deepcopy(dup)
    distinct["cases"][2]["nprocs"] = 16
    warns = []
    check_duplicate_cases(distinct, warns)
    if warns:
        print(f"self-test FAILED: distinct cases flagged as duplicates: {warns}")
        return 1
    print(f"self-test OK: good report accepted, {len(broken)} mutations all "
          "flagged, unknown key warns by default and fails under --strict, "
          "duplicate cases detected")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--schema", required=True, help="path to run_report_schema.json")
    ap.add_argument("--strict", action="store_true",
                    help="treat unknown keys as failures (CI default)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the validator flags known-bad reports")
    ap.add_argument("reports", nargs="*", help="RunReport JSON files to validate")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    if args.self_test:
        return self_test(schema)
    if not args.reports:
        ap.error("no report files given (or use --self-test)")

    failed = 0
    for path in args.reports:
        errors, warnings = validate_file(path, schema)
        if args.strict:
            errors, warnings = errors + warnings, []
        if errors:
            failed += 1
            print(f"{path}: INVALID ({len(errors)} error(s))")
            for e in errors:
                print(f"  - {e}")
        else:
            print(f"{path}: OK" + (f" ({len(warnings)} warning(s))" if warnings else ""))
        for w in warnings:
            print(f"  warning: {w}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
