/// Figure 4: speed of dgemv in MFlop/s against matrix size (n <= 150, the
/// paper sweeps row sizes up to ~1200 bytes).
#include "blas_sweep.hpp"

int main() {
    const blas_sweep::Kernel k{"Figure 4", "dgemv", "Mflop/sec", true, machine::shape_dgemv,
                               blas_sweep::host_rate_dgemv};
    blas_sweep::run(k, {4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 150});
    return 0;
}
