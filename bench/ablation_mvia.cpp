/// The paper's forward-looking claim, §3.2: "With the use of the emerging
/// M-VIA based MPI implementations latency is expected to go to the sub-50
/// microsecond range (reported values for the underlying M-VIA (1999)
/// implementation are 23 us)."  This bench re-prices the Muses cluster with
/// an M-VIA-class transport and shows how far the projected latency cut
/// moves the NekTar-F saturation point.
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/netmodel.hpp"

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("ablation_mvia", argc, argv);
    netsim::NetworkModel lam = netsim::by_name("Muses, LAM");
    netsim::NetworkModel mvia = lam;
    mvia.name = "Muses, M-VIA (projected)";
    mvia.latency_us = 23.0;   // the paper's cited M-VIA figure
    mvia.rendezvous_us = 10.0;
    mvia.cpu_poll_fraction = 1.0; // user-level networking polls

    std::printf("Paper extension: projected M-VIA transport on the Muses cluster\n\n");
    std::printf("Ping-pong latency: LAM %.0f us  ->  M-VIA %.0f us\n\n", lam.latency_us,
                mvia.latency_us);

    benchutil::Table table({"msg bytes", "LAM a2a MB/s", "M-VIA a2a MB/s", "gain"}, 16);
    table.print_header();
    perf::RunReport rep = perf::report("ablation_mvia");
    for (std::size_t m = 8; m <= (1u << 20); m *= 8) {
        const double a = lam.alltoall_bandwidth_mbps(4, m);
        const double b = mvia.alltoall_bandwidth_mbps(4, m);
        table.print_row({std::to_string(m), benchutil::fmt(a, "%.2f"),
                         benchutil::fmt(b, "%.2f"), benchutil::fmt(b / a, "%.2fx")});
        perf::Case kase;
        kase.values["msg_bytes"] = static_cast<double>(m);
        kase.values["lam_alltoall_mbps"] = a;
        kase.values["mvia_alltoall_mbps"] = b;
        kase.values["gain"] = b / a;
        rep.cases.push_back(std::move(kase));
    }
    std::printf("\nSmall-message collectives gain ~%.1fx; the Fast-Ethernet wire still\n"
                "caps large transfers, so M-VIA helps latency-bound stages (GS\n"
                "exchanges, small Alltoalls) but cannot lift the Table 2 plateau —\n"
                "consistent with the paper's assessment that bandwidth, not just\n"
                "latency, separates ethernet from Myrinet.\n",
                mvia.alltoall_bandwidth_mbps(4, 64) / lam.alltoall_bandwidth_mbps(4, 64));
    cli.finish(std::move(rep));
    return 0;
}
