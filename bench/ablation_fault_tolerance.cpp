/// Ablation: how much network *unreliability* — not just mean
/// latency/bandwidth — costs the NekTar-F time step.  The paper's Fast
/// Ethernet wall-clock divergence (Table 2) is driven by retransmits and
/// stragglers on the shared wire; this sweep quantifies that mechanism by
/// running the real Fourier solver on the simulated cluster while the
/// seeded fault layer injects packet loss and per-rank slowdowns, then
/// reports per-stage wall-time inflation versus the fault-free baseline.
///
/// The sweep lands in the RunReport (one case per run, with per-stage
/// "stageN.*" keys) so downstream tooling can plot inflation-vs-loss-rate
/// curves per network; stdout gets a human-readable summary table.
///
/// A second sweep prices outright node *death*: a seeded kill event fells
/// one rank mid-run and the checkpoint/rollback harness (DESIGN.md §5.6)
/// replays from the last globally complete checkpoint.  The sweep varies
/// the checkpoint cadence and reports the virtual seconds thrown away,
/// plus a byte-identity check of the recovered state against the
/// failure-free run.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "ckpt/recovery.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"

namespace {

struct FaultRun {
    perf::StageBreakdown bd; ///< rank-0 stages + fault accounting from all ranks
    simmpi::CommLog log;
    double max_wall = 0.0;  ///< slowest rank's virtual wall clock
    double mean_cpu = 0.0;
    double comm_groups = 1.0;
};

FaultRun run_fourier(int nprocs, const netsim::NetworkModel& net) {
    mesh::BluffBodyParams p;
    p.n_upstream = 3;
    p.n_wake = 4;
    p.n_body = 2;
    p.n_side = 2;
    const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));

    FaultRun data;
    const int bootstrap = 1, steady = 2;
    simmpi::World world(nprocs, net);
    std::vector<perf::StageBreakdown> bds(static_cast<std::size_t>(nprocs));
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
        nektar::FourierNsOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.01;
        opts.num_modes = static_cast<std::size_t>(c.size()); // 2 planes per proc
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_initial([](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                       [](double, double, double) { return 0.0; },
                       [](double, double, double z) { return 0.05 * std::cos(z); });
        for (int s = 0; s < bootstrap; ++s) ns.step();
        ns.breakdown() = {};
        for (int s = 0; s < steady; ++s) ns.step();
        bds[static_cast<std::size_t>(c.rank())] = ns.breakdown();
    });
    data.bd = bds[0];
    data.log = reports[0].log;
    data.comm_groups = static_cast<double>(1 + bootstrap + steady);
    for (const auto& rep : reports) {
        data.max_wall = std::max(data.max_wall, rep.wall_seconds);
        data.mean_cpu += rep.cpu_seconds / nprocs;
        // Fold every rank's fault accounting into the perf stage breakdown.
        for (const auto& [stage, fs] : rep.fault_log)
            data.bd.add_comm_faults(stage < 0 ? 0 : static_cast<std::size_t>(stage),
                                    fs.retransmits, fs.extra_seconds);
    }
    return data;
}

netsim::NetworkModel with_faults(const netsim::NetworkModel& base, unsigned long seed,
                                 double loss, double straggler_factor) {
    netsim::NetworkModel n = base;
    n.fault.seed = seed;
    n.fault.loss_probability = loss;
    // Loss detection on a kernel TCP stack costs a timeout ~an order of
    // magnitude above the base latency before the resend goes out.
    n.fault.retransmit_timeout_us = 10.0 * base.latency_us;
    n.fault.straggler_fraction = straggler_factor > 1.0 ? 0.25 : 0.0;
    n.fault.straggler_factor = straggler_factor;
    return n;
}

perf::Case make_case(const std::string& net_name, double loss, double straggler,
                     const FaultRun& r, const FaultRun& baseline,
                     const netsim::NetworkModel& net, int nprocs) {
    // Run totals via the one perf entry point (the per-subsystem total_*
    // getters this bench used to call are gone).
    perf::RunReport totals = perf::report("ablation_fault_tolerance", &r.bd);
    perf::Case c;
    c.labels["network"] = net_name;
    c.values["loss_rate"] = loss;
    c.values["straggler_factor"] = straggler;
    c.values["wall_seconds"] = r.max_wall;
    c.values["baseline_wall_seconds"] = baseline.max_wall;
    c.values["wall_inflation"] = r.max_wall / baseline.max_wall;
    c.values["cpu_seconds"] = r.mean_cpu;
    c.values["idle_seconds"] = r.max_wall - r.mean_cpu;
    c.values["retransmits"] = totals.metrics.counters["comm.retransmits"];
    c.values["fault_seconds"] = totals.metrics.counters["comm.fault_seconds"];
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
        const double comm = simmpi::price_stage(r.log, static_cast<int>(s), net, nprocs) /
                            r.comm_groups;
        const double fault = r.bd.fault_seconds[s] / r.comm_groups;
        const std::string prefix = "stage" + std::to_string(s) + ".";
        c.values[prefix + "comm_seconds"] = comm;
        c.values[prefix + "fault_seconds"] = fault;
        c.values[prefix + "retransmits"] = static_cast<double>(r.bd.retransmits[s]);
        c.values[prefix + "wall_inflation"] = comm > 0.0 ? (comm + fault) / comm : 1.0;
    }
    return c;
}

struct RecoveryRun {
    ckpt::RecoveryStats stats;
    std::vector<std::vector<std::uint8_t>> final_ckpt; ///< per rank
    /// Per-rank comm-event counter after each completed step (failure-free
    /// probe use: indexes the kill placement).
    std::vector<std::vector<std::uint64_t>> events_after_step;
    double max_wall = 0.0; ///< slowest rank's wall clock, successful attempt only
};

/// Runs `nsteps` of NekTar-F on the same bluff-body problem as run_fourier,
/// checkpointing every `cadence` steps into a Store and recovering from any
/// seeded kill the network model carries.
RecoveryRun run_recoverable(int nprocs, const netsim::NetworkModel& net, int cadence,
                            int nsteps) {
    mesh::BluffBodyParams p;
    p.n_upstream = 3;
    p.n_wake = 4;
    p.n_body = 2;
    p.n_side = 2;
    const auto disc = std::make_shared<nektar::Discretization>(
        std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p)), 4);

    nektar::FourierNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.01;
    opts.num_modes = static_cast<std::size_t>(nprocs); // 2 planes per proc
    opts.checkpoint_every = cadence;
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };

    simmpi::World world(nprocs, net);
    ckpt::Store store;
    RecoveryRun out;
    out.final_ckpt.assign(static_cast<std::size_t>(nprocs), {});
    out.events_after_step.assign(static_cast<std::size_t>(nprocs), {});
    out.stats = ckpt::run_with_recovery(world, store, [&](simmpi::Comm& c, int from) {
        const auto r = static_cast<std::size_t>(c.rank());
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_checkpoint_sink([&](const ckpt::Checkpoint& ck) {
            store.put(c.rank(), ns.steps_taken(), c.wall_time(), ck);
        });
        if (from >= 0)
            ns.restore(store.load(c.rank(), from));
        else
            ns.set_initial([](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                           [](double, double, double) { return 0.0; },
                           [](double, double, double z) { return 0.05 * std::cos(z); });
        out.events_after_step[r].clear();
        while (ns.steps_taken() < nsteps) {
            ns.step();
            out.events_after_step[r].push_back(c.comm_events());
        }
        out.final_ckpt[r] = ns.checkpoint().serialize();
    });
    for (const auto& rep : out.stats.reports)
        out.max_wall = std::max(out.max_wall, rep.wall_seconds);
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("ablation_fault_tolerance", argc, argv);
    const int nprocs = cli.request.ranks > 0 ? cli.request.ranks : 8;
    if (nprocs < 2) {
        std::fprintf(stderr, "%s: --ranks must be >= 2 (got %d)\n", argv[0], nprocs);
        return 2;
    }
    // The paper's year as the default seed; any fixed seed keeps runs
    // reproducible.
    const unsigned long seed = cli.request.seed != 0 ? cli.request.seed : 1999;
    const std::vector<std::string> networks = {"RoadRunner eth.", "RoadRunner myr.", "T3E"};
    const std::vector<double> loss_rates = {0.0, 0.001, 0.01, 0.05};
    const std::vector<double> straggler_factors = {2.0, 4.0};

    std::printf("Fault-tolerance ablation: NekTar-F wall-time inflation under packet\n"
                "loss and stragglers (P = %d, seed = %lu)\n\n", nprocs, seed);
    benchutil::Table table({"network", "loss", "straggler", "inflation", "retrans"}, 16);
    table.print_header();

    perf::RunReport rep = perf::report("ablation_fault_tolerance");
    rep.meta["nprocs"] = std::to_string(nprocs);
    rep.meta["fault_seed"] = std::to_string(seed);

    const auto run_point = [&](const std::string& name, const netsim::NetworkModel& base,
                               const FaultRun& baseline, const FaultRun& r, double loss,
                               double sf) {
        const perf::Case c = make_case(name, loss, sf, r, baseline, base, nprocs);
        table.print_row({name, benchutil::fmt(loss, "%g"), benchutil::fmt(sf, "%g"),
                         benchutil::fmt(c.values.at("wall_inflation"), "%.3f"),
                         benchutil::fmt(c.values.at("retransmits"), "%.0f")});
        rep.cases.push_back(c);
    };

    for (const auto& name : networks) {
        if (!cli.net_selected(name)) continue;
        const netsim::NetworkModel& base = netsim::by_name(name);
        // Fault-free baseline for this network.
        const FaultRun baseline = run_fourier(nprocs, with_faults(base, seed, 0.0, 1.0));
        // Loss-rate sweep at no straggling.
        for (const double loss : loss_rates) {
            const FaultRun r =
                loss == 0.0 ? baseline
                            : run_fourier(nprocs, with_faults(base, seed, loss, 1.0));
            run_point(name, base, baseline, r, loss, 1.0);
        }
        // Straggler-severity sweep at a fixed modest loss rate.
        for (const double sf : straggler_factors) {
            const FaultRun r = run_fourier(nprocs, with_faults(base, seed, 0.01, sf));
            run_point(name, base, baseline, r, 0.01, sf);
        }
    }

    // Kill/recovery sweep: the last rank dies inside the *final* step, so
    // each cadence rolls back to a different checkpoint (cadence 1 loses
    // one step, cadence 4 loses three).  The cadence trades checkpoint
    // frequency against the virtual seconds a kill throws away, and the
    // recovered state must stay byte-identical to the failure-free run.
    const netsim::NetworkModel recovery_base =
        with_faults(netsim::by_name("RoadRunner myr."), seed, 0.01, 1.0);
    const std::vector<int> cadences = cli.request.smoke ? std::vector<int>{2}
                                                : std::vector<int>{1, 2, 4};
    const int nsteps = 8;
    const int kill_rank = nprocs - 1;
    const RecoveryRun probe = run_recoverable(nprocs, recovery_base, /*cadence=*/1, nsteps);
    // First comm event of the final step, off the failure-free probe.
    const std::uint64_t kill_events =
        probe.events_after_step[static_cast<std::size_t>(kill_rank)]
                               [static_cast<std::size_t>(nsteps - 2)] + 1;

    std::printf("\nKill/recovery sweep: rank %d dies in step %d, rollback + replay from\n"
                "the last complete checkpoint (P = %d)\n\n",
                kill_rank, nsteps, nprocs);
    benchutil::Table rtable({"cadence", "restart", "attempts", "lost_sec", "identical"}, 12);
    rtable.print_header();
    for (const int cadence : cadences) {
        netsim::NetworkModel net = recovery_base;
        net.fault.kill_rank = kill_rank;
        net.fault.kill_after_events = kill_events;
        const RecoveryRun r = run_recoverable(nprocs, net, cadence, nsteps);
        const bool identical = r.final_ckpt == probe.final_ckpt;
        rtable.print_row({std::to_string(cadence), std::to_string(r.stats.restart_step),
                          std::to_string(r.stats.attempts),
                          benchutil::fmt(r.stats.lost_virtual_seconds, "%.3e"),
                          identical ? "yes" : "NO"});
        perf::Case c;
        c.labels["network"] = recovery_base.name;
        c.labels["sweep"] = "kill_recovery";
        c.values["checkpoint_cadence"] = static_cast<double>(cadence);
        c.values["kills"] = static_cast<double>(r.stats.kills);
        c.values["attempts"] = static_cast<double>(r.stats.attempts);
        c.values["restart_step"] = static_cast<double>(r.stats.restart_step);
        c.values["lost_virtual_seconds"] = r.stats.lost_virtual_seconds;
        c.values["wall_seconds"] = r.max_wall;
        c.values["failure_free_wall_seconds"] = probe.max_wall;
        c.values["recovered_identical"] = identical ? 1.0 : 0.0;
        rep.cases.push_back(c);
        r.stats.stamp(rep);
        if (!identical) {
            std::fprintf(stderr, "%s: recovered state diverged from the failure-free run "
                                 "(cadence %d)\n", argv[0], cadence);
            return 1;
        }
    }
    cli.finish(std::move(rep));
    return 0;
}
