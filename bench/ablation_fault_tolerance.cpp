/// Ablation: how much network *unreliability* — not just mean
/// latency/bandwidth — costs the NekTar-F time step.  The paper's Fast
/// Ethernet wall-clock divergence (Table 2) is driven by retransmits and
/// stragglers on the shared wire; this sweep quantifies that mechanism by
/// running the real Fourier solver on the simulated cluster while the
/// seeded fault layer injects packet loss and per-rank slowdowns, then
/// reports per-stage wall-time inflation versus the fault-free baseline.
///
/// The sweep lands in the RunReport (one case per run, with per-stage
/// "stageN.*" keys) so downstream tooling can plot inflation-vs-loss-rate
/// curves per network; stdout gets a human-readable summary table.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "app_model.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"

namespace {

struct FaultRun {
    perf::StageBreakdown bd; ///< rank-0 stages + fault accounting from all ranks
    simmpi::CommLog log;
    double max_wall = 0.0;  ///< slowest rank's virtual wall clock
    double mean_cpu = 0.0;
    double comm_groups = 1.0;
};

FaultRun run_fourier(int nprocs, const netsim::NetworkModel& net) {
    mesh::BluffBodyParams p;
    p.n_upstream = 3;
    p.n_wake = 4;
    p.n_body = 2;
    p.n_side = 2;
    const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));

    FaultRun data;
    const int bootstrap = 1, steady = 2;
    simmpi::World world(nprocs, net);
    std::vector<perf::StageBreakdown> bds(static_cast<std::size_t>(nprocs));
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
        nektar::FourierNsOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.01;
        opts.num_modes = static_cast<std::size_t>(c.size()); // 2 planes per proc
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_initial([](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                       [](double, double, double) { return 0.0; },
                       [](double, double, double z) { return 0.05 * std::cos(z); });
        for (int s = 0; s < bootstrap; ++s) ns.step();
        ns.breakdown() = {};
        for (int s = 0; s < steady; ++s) ns.step();
        bds[static_cast<std::size_t>(c.rank())] = ns.breakdown();
    });
    data.bd = bds[0];
    data.log = reports[0].log;
    data.comm_groups = static_cast<double>(1 + bootstrap + steady);
    for (const auto& rep : reports) {
        data.max_wall = std::max(data.max_wall, rep.wall_seconds);
        data.mean_cpu += rep.cpu_seconds / nprocs;
        // Fold every rank's fault accounting into the perf stage breakdown.
        for (const auto& [stage, fs] : rep.fault_log)
            data.bd.add_comm_faults(stage < 0 ? 0 : static_cast<std::size_t>(stage),
                                    fs.retransmits, fs.extra_seconds);
    }
    return data;
}

netsim::NetworkModel with_faults(const netsim::NetworkModel& base, unsigned long seed,
                                 double loss, double straggler_factor) {
    netsim::NetworkModel n = base;
    n.fault.seed = seed;
    n.fault.loss_probability = loss;
    // Loss detection on a kernel TCP stack costs a timeout ~an order of
    // magnitude above the base latency before the resend goes out.
    n.fault.retransmit_timeout_us = 10.0 * base.latency_us;
    n.fault.straggler_fraction = straggler_factor > 1.0 ? 0.25 : 0.0;
    n.fault.straggler_factor = straggler_factor;
    return n;
}

perf::Case make_case(const std::string& net_name, double loss, double straggler,
                     const FaultRun& r, const FaultRun& baseline,
                     const netsim::NetworkModel& net, int nprocs) {
    // Run totals via the one perf entry point (the per-subsystem total_*
    // getters this bench used to call are gone).
    perf::RunReport totals = perf::report("ablation_fault_tolerance", &r.bd);
    perf::Case c;
    c.labels["network"] = net_name;
    c.values["loss_rate"] = loss;
    c.values["straggler_factor"] = straggler;
    c.values["wall_seconds"] = r.max_wall;
    c.values["baseline_wall_seconds"] = baseline.max_wall;
    c.values["wall_inflation"] = r.max_wall / baseline.max_wall;
    c.values["cpu_seconds"] = r.mean_cpu;
    c.values["idle_seconds"] = r.max_wall - r.mean_cpu;
    c.values["retransmits"] = totals.metrics.counters["comm.retransmits"];
    c.values["fault_seconds"] = totals.metrics.counters["comm.fault_seconds"];
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
        const double comm = simmpi::price_stage(r.log, static_cast<int>(s), net, nprocs) /
                            r.comm_groups;
        const double fault = r.bd.fault_seconds[s] / r.comm_groups;
        const std::string prefix = "stage" + std::to_string(s) + ".";
        c.values[prefix + "comm_seconds"] = comm;
        c.values[prefix + "fault_seconds"] = fault;
        c.values[prefix + "retransmits"] = static_cast<double>(r.bd.retransmits[s]);
        c.values[prefix + "wall_inflation"] = comm > 0.0 ? (comm + fault) / comm : 1.0;
    }
    return c;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("ablation_fault_tolerance", argc, argv);
    const int nprocs = cli.ranks > 0 ? cli.ranks : 8;
    if (nprocs < 2) {
        std::fprintf(stderr, "%s: --ranks must be >= 2 (got %d)\n", argv[0], nprocs);
        return 2;
    }
    // The paper's year as the default seed; any fixed seed keeps runs
    // reproducible.
    const unsigned long seed = cli.seed != 0 ? cli.seed : 1999;
    const std::vector<std::string> networks = {"RoadRunner eth.", "RoadRunner myr.", "T3E"};
    const std::vector<double> loss_rates = {0.0, 0.001, 0.01, 0.05};
    const std::vector<double> straggler_factors = {2.0, 4.0};

    std::printf("Fault-tolerance ablation: NekTar-F wall-time inflation under packet\n"
                "loss and stragglers (P = %d, seed = %lu)\n\n", nprocs, seed);
    benchutil::Table table({"network", "loss", "straggler", "inflation", "retrans"}, 16);
    table.print_header();

    perf::RunReport rep = perf::report("ablation_fault_tolerance");
    rep.meta["nprocs"] = std::to_string(nprocs);
    rep.meta["fault_seed"] = std::to_string(seed);

    const auto run_point = [&](const std::string& name, const netsim::NetworkModel& base,
                               const FaultRun& baseline, const FaultRun& r, double loss,
                               double sf) {
        const perf::Case c = make_case(name, loss, sf, r, baseline, base, nprocs);
        table.print_row({name, benchutil::fmt(loss, "%g"), benchutil::fmt(sf, "%g"),
                         benchutil::fmt(c.values.at("wall_inflation"), "%.3f"),
                         benchutil::fmt(c.values.at("retransmits"), "%.0f")});
        rep.cases.push_back(c);
    };

    for (const auto& name : networks) {
        if (!cli.net_selected(name)) continue;
        const netsim::NetworkModel& base = netsim::by_name(name);
        // Fault-free baseline for this network.
        const FaultRun baseline = run_fourier(nprocs, with_faults(base, seed, 0.0, 1.0));
        // Loss-rate sweep at no straggling.
        for (const double loss : loss_rates) {
            const FaultRun r =
                loss == 0.0 ? baseline
                            : run_fourier(nprocs, with_faults(base, seed, loss, 1.0));
            run_point(name, base, baseline, r, loss, 1.0);
        }
        // Straggler-severity sweep at a fixed modest loss rate.
        for (const double sf : straggler_factors) {
            const FaultRun r = run_fourier(nprocs, with_faults(base, seed, 0.01, sf));
            run_point(name, base, baseline, r, 0.01, sf);
        }
    }
    cli.finish(std::move(rep));
    return 0;
}
