/// Ablation: how much network *unreliability* — not just mean
/// latency/bandwidth — costs the NekTar-F time step.  The paper's Fast
/// Ethernet wall-clock divergence (Table 2) is driven by retransmits and
/// stragglers on the shared wire; this sweep quantifies that mechanism by
/// running the real Fourier solver on the simulated cluster while the
/// seeded fault layer injects packet loss and per-rank slowdowns, then
/// reports per-stage wall-time inflation versus the fault-free baseline.
///
/// Output is JSON (one document on stdout) so downstream tooling can plot
/// inflation-vs-loss-rate curves per network.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "app_model.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"

namespace {

struct FaultRun {
    perf::StageBreakdown bd; ///< rank-0 stages + fault accounting from all ranks
    simmpi::CommLog log;
    double max_wall = 0.0;  ///< slowest rank's virtual wall clock
    double mean_cpu = 0.0;
    double comm_groups = 1.0;
};

FaultRun run_fourier(int nprocs, const netsim::NetworkModel& net) {
    mesh::BluffBodyParams p;
    p.n_upstream = 3;
    p.n_wake = 4;
    p.n_body = 2;
    p.n_side = 2;
    const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));

    FaultRun data;
    const int bootstrap = 1, steady = 2;
    simmpi::World world(nprocs, net);
    std::vector<perf::StageBreakdown> bds(static_cast<std::size_t>(nprocs));
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
        nektar::FourierNsOptions opts;
        opts.dt = 2e-3;
        opts.nu = 0.01;
        opts.num_modes = static_cast<std::size_t>(c.size()); // 2 planes per proc
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_initial([](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                       [](double, double, double) { return 0.0; },
                       [](double, double, double z) { return 0.05 * std::cos(z); });
        for (int s = 0; s < bootstrap; ++s) ns.step();
        ns.breakdown() = {};
        for (int s = 0; s < steady; ++s) ns.step();
        bds[static_cast<std::size_t>(c.rank())] = ns.breakdown();
    });
    data.bd = bds[0];
    data.log = reports[0].log;
    data.comm_groups = static_cast<double>(1 + bootstrap + steady);
    for (const auto& rep : reports) {
        data.max_wall = std::max(data.max_wall, rep.wall_seconds);
        data.mean_cpu += rep.cpu_seconds / nprocs;
        // Fold every rank's fault accounting into the perf stage breakdown.
        for (const auto& [stage, fs] : rep.fault_log)
            data.bd.add_comm_faults(stage < 0 ? 0 : static_cast<std::size_t>(stage),
                                    fs.retransmits, fs.extra_seconds);
    }
    return data;
}

netsim::NetworkModel with_faults(const netsim::NetworkModel& base, double loss,
                                 double straggler_factor) {
    netsim::NetworkModel n = base;
    n.fault.seed = 1999; // the paper's year; any fixed seed keeps runs reproducible
    n.fault.loss_probability = loss;
    // Loss detection on a kernel TCP stack costs a timeout ~an order of
    // magnitude above the base latency before the resend goes out.
    n.fault.retransmit_timeout_us = 10.0 * base.latency_us;
    n.fault.straggler_fraction = straggler_factor > 1.0 ? 0.25 : 0.0;
    n.fault.straggler_factor = straggler_factor;
    return n;
}

void emit_run(const char* net_name, double loss, double straggler, const FaultRun& r,
              const FaultRun& baseline, const netsim::NetworkModel& net, int nprocs,
              bool first) {
    std::printf("%s\n    {\"network\": \"%s\", \"loss_rate\": %g, "
                "\"straggler_factor\": %g,\n",
                first ? "" : ",", net_name, loss, straggler);
    std::printf("     \"wall_seconds\": %.6e, \"baseline_wall_seconds\": %.6e, "
                "\"wall_inflation\": %.4f,\n",
                r.max_wall, baseline.max_wall, r.max_wall / baseline.max_wall);
    std::printf("     \"cpu_seconds\": %.6e, \"idle_seconds\": %.6e,\n", r.mean_cpu,
                r.max_wall - r.mean_cpu);
    std::printf("     \"retransmits\": %llu, \"fault_seconds\": %.6e,\n",
                static_cast<unsigned long long>(r.bd.total_retransmits()),
                r.bd.total_fault_seconds());
    std::printf("     \"stages\": [");
    for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
        const double comm = simmpi::price_stage(r.log, static_cast<int>(s), net, nprocs) /
                            r.comm_groups;
        const double fault = r.bd.fault_seconds[s] / r.comm_groups;
        const double inflation = comm > 0.0 ? (comm + fault) / comm : 1.0;
        std::printf("%s\n        {\"stage\": %zu, \"name\": \"%s\", "
                    "\"comm_seconds\": %.6e, \"fault_seconds\": %.6e, "
                    "\"retransmits\": %llu, \"wall_inflation\": %.4f}",
                    s == 1 ? "" : ",", s, perf::stage_name(s).c_str(), comm, fault,
                    static_cast<unsigned long long>(r.bd.retransmits[s]), inflation);
    }
    std::printf("]}");
}

} // namespace

int main(int argc, char** argv) {
    const int nprocs = argc > 1 ? std::atoi(argv[1]) : 8;
    if (nprocs < 2) {
        std::fprintf(stderr, "usage: %s [nprocs >= 2]  (got \"%s\")\n", argv[0],
                     argc > 1 ? argv[1] : "");
        return 2;
    }
    const std::vector<std::string> networks = {"RoadRunner eth.", "RoadRunner myr.", "T3E"};
    const std::vector<double> loss_rates = {0.0, 0.001, 0.01, 0.05};
    const std::vector<double> straggler_factors = {2.0, 4.0};

    std::printf("{\n  \"bench\": \"ablation_fault_tolerance\",\n"
                "  \"nprocs\": %d,\n  \"fault_seed\": 1999,\n  \"runs\": [",
                nprocs);
    bool first = true;
    for (const auto& name : networks) {
        const netsim::NetworkModel& base = netsim::by_name(name);
        // Fault-free baseline for this network.
        const FaultRun baseline = run_fourier(nprocs, with_faults(base, 0.0, 1.0));
        // Loss-rate sweep at no straggling.
        for (const double loss : loss_rates) {
            const FaultRun r = loss == 0.0
                                   ? baseline
                                   : run_fourier(nprocs, with_faults(base, loss, 1.0));
            emit_run(name.c_str(), loss, 1.0, r, baseline, base, nprocs, first);
            first = false;
        }
        // Straggler-severity sweep at a fixed modest loss rate.
        for (const double sf : straggler_factors) {
            const FaultRun r = run_fourier(nprocs, with_faults(base, 0.01, sf));
            emit_run(name.c_str(), 0.01, sf, r, baseline, base, nprocs, first);
            first = false;
        }
    }
    std::printf("\n  ]\n}\n");
    return 0;
}
