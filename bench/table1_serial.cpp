/// Table 1: CPU time per time step of the serial bluff-body simulation on
/// seven machines.  The paper's run: 902 elements, polynomial order 8,
/// 230,000 dof.  The solver executes here on a reduced version of the same
/// mesh; its instrumented operation stream is priced on each machine model.
/// Shape to reproduce: "only the P2SC nodes are faster than the PC, with the
/// T3E being just as fast."
#include <cstdio>
#include <map>
#include <memory>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_serial.hpp"

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("table1_serial", argc, argv);
    // Reduced bluff-body workload (the paper's full 230k-dof problem at the
    // same physics); the relative machine ordering is scale-independent.
    mesh::BluffBodyParams p;
    p.n_upstream = 6;
    p.n_wake = 10;
    p.n_body = 3;
    p.n_side = 4;
    const auto disc = std::make_shared<nektar::Discretization>(
        std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p)), 6);

    nektar::SerialNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.01;
    opts.trace = cli.trace;
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    nektar::SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    ns.step(); // first (bootstrap) step excluded, as in steady-state timing
    ns.breakdown() = {};
    for (int s = 0; s < 3; ++s) ns.step();

    std::printf("Table 1: serial bluff-body simulation, CPU seconds / time step\n");
    std::printf("(run here: %s, order %zu, %zu dof; paper: 902 elements, order 8, 230k dof)\n\n",
                disc->mesh().summary().c_str(), disc->order(), disc->dofmap().num_global());

    const std::size_t field_bytes = disc->quad_size() * sizeof(double);
    const std::size_t solver_bytes =
        disc->dofmap().num_global() * (disc->dofmap().bandwidth() + 1) * sizeof(double);
    const auto shapes = app_model::solver_shapes(field_bytes, solver_bytes);

    // Paper's reported values for the shape comparison.
    const std::map<std::string, double> paper = {
        {"AP3000", 1.22}, {"Onyx2", 1.03},     {"Muses", 0.81}, {"SP2-Thin2", 1.44},
        {"SP2-Silver", 1.3}, {"T3E", 0.82},    {"P2SC", 0.71}};
    const std::vector<std::pair<std::string, std::string>> rows = {
        {"Fujitsu AP3000", "AP3000"},       {"Onyx 2", "Onyx2"},
        {"Pentium II, 450Mhz", "Muses"},    {"SP2 \"Thin2\" nodes", "SP2-Thin2"},
        {"SP2 \"Silver\" nodes", "SP2-Silver"}, {"T3E", "T3E"},
        {"P2SC", "P2SC"}};

    benchutil::Table table({"Machine", "s/step", "vs PC", "paper s/step", "paper vs PC"}, 22);
    table.print_header();
    perf::RunReport rep = perf::report("table1_serial", &ns.breakdown());
    const auto pc = app_model::price_run(ns.breakdown(), {}, {"", "Muses", ""}, 1, shapes);
    for (const auto& [label, key] : rows) {
        if (!cli.machine_selected(key)) continue;
        const auto t = app_model::price_run(ns.breakdown(), {}, {"", key, ""}, 1, shapes);
        table.print_row({label, benchutil::fmt(t.cpu, "%.3f"),
                         benchutil::fmt(t.cpu / pc.cpu, "%.2f"),
                         benchutil::fmt(paper.at(key), "%.2f"),
                         benchutil::fmt(paper.at(key) / 0.81, "%.2f")});
        perf::Case kase;
        kase.labels["machine"] = key;
        kase.values["cpu_seconds_per_step"] = t.cpu;
        kase.values["vs_pc"] = t.cpu / pc.cpu;
        kase.values["paper_seconds_per_step"] = paper.at(key);
        kase.values["paper_vs_pc"] = paper.at(key) / 0.81;
        rep.cases.push_back(std::move(kase));
    }
    std::printf("\nHost-measured time on this machine: %.3f s/step\n",
                ns.breakdown().total_host_seconds() / ns.breakdown().steps);
    cli.finish(std::move(rep));
    return 0;
}
