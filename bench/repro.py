#!/usr/bin/env python3
"""One-command regeneration of every paper table/figure in figure_map.json.

Runs each mapped bench out of an existing build tree, collects the
RunReports into an output directory, validates them against the committed
schema, checks the map's expectations (bench id, case count), and writes a
deterministic manifest.json (sorted keys, no timestamps) so two runs of

  bench/repro.py --smoke --out-dir runA
  bench/repro.py --smoke --out-dir runB
  bench/check_determinism.py runA runB --normalize-host-times

prove the whole harness byte-reproducible.  Stdlib only.

Usage:
  repro.py [--build-dir build] [--out-dir reports] [--map bench/figure_map.json]
           [--schema bench/run_report_schema.json] [--smoke] [--only ID]... [--list]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def load_map(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        m = json.load(f)
    if m.get("schema_version") != 1:
        raise SystemExit(f"{path}: unsupported figure-map schema_version")
    for fig in m["figures"]:
        for key in ("id", "paper", "bench", "args", "report", "deterministic", "expect"):
            if key not in fig:
                raise SystemExit(f"{path}: figure entry {fig.get('id', '?')} lacks '{key}'")
    return m


def bench_path(build_dir: str, bench: str) -> str:
    p = os.path.join(build_dir, "bench", bench)
    if not os.path.isfile(p):
        raise SystemExit(f"bench binary not found: {p} (build the repo first)")
    return p


def run_figure(fig: dict, build_dir: str, out_dir: str, smoke: bool) -> str:
    out = os.path.join(out_dir, fig["report"])
    cmd = [bench_path(build_dir, fig["bench"])] + list(fig["args"])
    if smoke:
        cmd += list(fig.get("smoke_args", [])) + ["--smoke"]
    cmd += ["--out", out]
    print(f"[repro] {fig['id']} ({fig['paper']}): {' '.join(cmd)}")
    r = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if r.returncode != 0:
        sys.stdout.write(r.stdout)
        raise SystemExit(f"{fig['id']}: bench exited with {r.returncode}")
    return out


def check_expectations(fig: dict, report_path: str) -> None:
    with open(report_path, "r", encoding="utf-8") as f:
        rep = json.load(f)
    exp = fig["expect"]
    if rep.get("bench") != exp["bench"]:
        raise SystemExit(
            f"{fig['id']}: report names bench '{rep.get('bench')}', expected '{exp['bench']}'")
    ncases = len(rep.get("cases", []))
    if ncases < exp.get("min_cases", 0):
        raise SystemExit(
            f"{fig['id']}: report holds {ncases} cases, expected >= {exp['min_cases']}")


def validate_reports(schema: str, paths: list[str]) -> None:
    cmd = [sys.executable, os.path.join(HERE, "validate_run_report.py"),
           "--schema", schema] + paths
    r = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    sys.stdout.write(r.stdout)
    if r.returncode != 0:
        raise SystemExit("schema validation failed")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out-dir", default="reports")
    ap.add_argument("--map", default=os.path.join(HERE, "figure_map.json"))
    ap.add_argument("--schema", default=os.path.join(HERE, "run_report_schema.json"))
    ap.add_argument("--smoke", action="store_true",
                    help="shrink every sweep for per-commit CI")
    ap.add_argument("--only", action="append", default=[],
                    help="regenerate only these figure ids (repeatable)")
    ap.add_argument("--list", action="store_true",
                    help="list the mapped figures and exit (also validates the map)")
    args = ap.parse_args()

    fmap = load_map(args.map)
    figures = fmap["figures"]
    if args.only:
        known = {f["id"] for f in figures}
        for fid in args.only:
            if fid not in known:
                raise SystemExit(f"unknown figure id '{fid}' (have: {', '.join(sorted(known))})")
        figures = [f for f in figures if f["id"] in args.only]

    if args.list:
        for f in figures:
            det = "deterministic" if f["deterministic"] else "host-dependent"
            print(f"{f['id']:10s} {f['paper']:40s} {f['bench']} ({det})")
        for h in fmap.get("host_microbenches", []):
            print(f"{h['id']:10s} {h['paper']:40s} [excluded: {h['why_excluded']}]")
        return 0

    os.makedirs(args.out_dir, exist_ok=True)
    manifest = {"schema_version": 1, "smoke": bool(args.smoke), "reports": {}}
    paths = []
    for fig in figures:
        path = run_figure(fig, args.build_dir, args.out_dir, args.smoke)
        check_expectations(fig, path)
        paths.append(path)
        manifest["reports"][fig["report"]] = {
            "id": fig["id"],
            "paper": fig["paper"],
            "deterministic": fig["deterministic"],
        }
    validate_reports(args.schema, paths)

    manifest_path = os.path.join(args.out_dir, "manifest.json")
    with open(manifest_path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[repro] {len(paths)} reports regenerated into {args.out_dir} "
          f"(manifest: {manifest_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
