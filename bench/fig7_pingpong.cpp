/// Figure 7: NetPIPE-style ping-pong one-way latency (left plot: 0-600 bytes)
/// and one-way bandwidth (right plot: up to ~1 GB) for the twelve network
/// configurations of the paper.  A simmpi cross-check runs a real two-rank
/// ping-pong over each model and verifies the virtual clock agrees.
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/netpipe.hpp"
#include "simmpi/simmpi.hpp"

namespace {

void latency_table() {
    std::printf("Figure 7 (left): ping-pong one-way latency (microseconds)\n\n");
    const auto& nets = netsim::pingpong_roster();
    std::vector<std::string> headers = {"bytes"};
    for (const auto& n : nets) headers.push_back(n.name);
    benchutil::Table table(headers, 22);
    table.print_header();
    for (std::size_t m = 0; m <= 600; m += 100) {
        std::vector<std::string> row = {std::to_string(m)};
        for (const auto& n : nets) row.push_back(benchutil::fmt(n.ptp_seconds(m) * 1e6));
        table.print_row(row);
    }
    std::printf("\n");
}

void bandwidth_table() {
    std::printf("Figure 7 (right): ping-pong one-way bandwidth (MB/sec)\n\n");
    const auto& nets = netsim::pingpong_roster();
    std::vector<std::string> headers = {"bytes"};
    for (const auto& n : nets) headers.push_back(n.name);
    benchutil::Table table(headers, 22);
    table.print_header();
    for (std::size_t m = 64; m <= (1u << 27); m *= 8) {
        std::vector<std::string> row = {std::to_string(m)};
        for (const auto& n : nets)
            row.push_back(benchutil::fmt(n.pingpong_bandwidth_mbps(m), "%.2f"));
        table.print_row(row);
    }
    std::printf("\n");
}

/// Runs an actual two-rank ping-pong through the simulated MPI runtime and
/// compares the virtual-clock result against the analytic curve.
void simmpi_crosscheck() {
    std::printf("Cross-check: real simmpi ping-pong (virtual clock) vs model at 64 KB\n\n");
    benchutil::Table table({"network", "model us", "simmpi us"}, 24);
    table.print_header();
    for (const auto& net : netsim::pingpong_roster()) {
        const std::size_t bytes = 64 * 1024;
        const std::size_t n = bytes / sizeof(double);
        simmpi::World world(2, net);
        const int reps = 10;
        const auto reports = world.run([&](simmpi::Comm& c) {
            std::vector<double> buf(n, 1.0);
            for (int r = 0; r < reps; ++r) {
                if (c.rank() == 0) {
                    c.send(1, r, buf);
                    c.recv(1, 1000 + r, buf);
                } else {
                    c.recv(0, r, buf);
                    c.send(0, 1000 + r, buf);
                }
            }
        });
        const double one_way_us = reports[0].wall_seconds / (2.0 * reps) * 1e6;
        table.print_row({net.name, benchutil::fmt(net.ptp_seconds(bytes) * 1e6, "%.2f"),
                         benchutil::fmt(one_way_us, "%.2f")});
    }
    std::printf("\n");
}

} // namespace

int main() {
    latency_table();
    bandwidth_table();
    simmpi_crosscheck();
    return 0;
}
