/// Load benchmark for the cluster-lab scenario service: sustained QPS,
/// latency percentiles and cache behaviour under a seeded mix of thousands
/// of concurrent scenario queries (machine x network x solver x P x fault
/// profile).
///
/// Two phases over one Service (or a running daemon via --connect):
///   cold     — every distinct scenario once; each answer is computed and
///              lands in the RunReport store
///   repeated — the full request stream, drawn 95% from the distinct pool
///              and 5% fresh variants, issued by --clients concurrent
///              client threads.  Expected cache hit rate ~95%; the bench
///              FAILS (exit 1) below 90%.
/// The bench also re-computes a sample of answers on a fresh evaluator and
/// fails unless the served bytes are identical under the cache-hit mask —
/// the memoisation contract the store is built on.
///
/// The whole mix is a pure function of --seed, so two runs against two
/// --store directories must produce byte-identical store contents (CI
/// diff -r's them as the service determinism gate).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "lab/evaluator.hpp"
#include "lab/fault_profiles.hpp"
#include "lab/service.hpp"
#include "lab/wire.hpp"
#include "machine/machine_model.hpp"
#include "netsim/netmodel.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

/// Deterministic 64-bit mixer (splitmix-style) so the request mix is a pure
/// function of the seed.
struct Rng {
    std::uint64_t state;
    std::uint64_t next() {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// The distinct scenario pool: random platform/fault/P/dof combinations,
/// model fidelity except for a small measured slice in full (non-smoke)
/// runs (probe runs are real solver executions).
std::vector<lab::ScenarioRequest> make_pool(std::size_t distinct, Rng& rng, bool smoke) {
    const auto& machines = machine::roster();
    const auto& nets = netsim::alltoall_roster();
    const auto& faults = lab::fault_roster();
    const int ranks[] = {2, 4, 8, 16, 32, 64};

    std::vector<lab::ScenarioRequest> pool;
    pool.reserve(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
        lab::ScenarioRequest req;
        req.machine = machines[rng.below(machines.size())].name;
        req.net = nets[rng.below(nets.size())].name;
        req.fault = faults[rng.below(faults.size())].name;
        if (req.fault == "clean") req.fault.clear();
        req.ranks = ranks[rng.below(6)];
        req.dof_per_rank = 50000.0 + 10000.0 * static_cast<double>(rng.below(90));
        req.transpose = rng.below(4) == 0 ? "pencil" : "";
        req.fidelity = "model";
        if (!smoke && i % 50 == 7) { // measured slice: one probe per 50 scenarios
            req.fidelity = "measured";
            req.solver = "fourier";
            req.ranks = req.ranks > 8 ? 4 : req.ranks;
            req.transpose.clear();
        }
        pool.push_back(std::move(req));
    }
    return pool;
}

double percentile(std::vector<double> sorted_us, double p) {
    if (sorted_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
    return sorted_us[idx];
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("bench_lab_load", argc, argv);
    const bool smoke = cli.request.smoke;
    const std::size_t total = cli.requests > 0 ? static_cast<std::size_t>(cli.requests)
                                               : (smoke ? 400 : 5000);
    const std::size_t distinct = cli.distinct > 0 ? static_cast<std::size_t>(cli.distinct)
                                                  : (smoke ? 40 : 200);
    const unsigned clients = cli.clients > 0 ? static_cast<unsigned>(cli.clients) : 8;
    const std::uint64_t seed = cli.request.seed != 0 ? cli.request.seed : 1999;

    std::printf("cluster-lab load bench: %zu requests over %zu distinct scenarios, "
                "%u clients%s\n",
                total, distinct, clients,
                cli.connect.empty() ? "" : " (via daemon socket)");

    lab::Service service(cli.store);
    // One answer path for both modes: in-process service or daemon socket.
    const auto answer_via = [&](int fd, const std::string& request_json) {
        return fd >= 0 ? lab::wire::request(fd, request_json)
                       : lab::wire::response_payload(service.answer_json(request_json));
    };
    const auto connect_fd = [&]() {
        return cli.connect.empty() ? -1 : lab::wire::connect_unix(cli.connect);
    };

    Rng rng{seed};
    const auto pool = make_pool(distinct, rng, smoke);

    // ---- cold phase: every distinct scenario once -------------------------
    std::vector<double> cold_us(pool.size());
    const auto cold_t0 = clock_type::now();
    {
        const int fd = connect_fd();
        for (std::size_t i = 0; i < pool.size(); ++i) {
            const auto t0 = clock_type::now();
            const std::string reply = answer_via(fd, pool[i].canonical_json());
            cold_us[i] = std::chrono::duration<double, std::micro>(clock_type::now() - t0)
                             .count();
            if (reply.find("schema_version") == std::string::npos) {
                std::fprintf(stderr, "cold phase: scenario %zu not answered: %.120s\n", i,
                             reply.c_str());
                return 1;
            }
        }
        if (fd >= 0) ::close(fd);
    }
    const double cold_s =
        std::chrono::duration<double>(clock_type::now() - cold_t0).count();

    // ---- repeated phase: the concurrent mix -------------------------------
    // Pre-drawn so the stream (and thus the store) is client-count
    // independent: 95% pool references, 5% fresh dof variants.
    std::vector<lab::ScenarioRequest> stream;
    stream.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        if (rng.below(20) == 0) {
            lab::ScenarioRequest fresh = pool[rng.below(pool.size())];
            fresh.fidelity = "model"; // variants never re-run probes
            fresh.solver.clear();
            fresh.dof_per_rank += 1000.0 * static_cast<double>(1 + rng.below(999));
            stream.push_back(std::move(fresh));
        } else {
            stream.push_back(pool[rng.below(pool.size())]);
        }
    }

    std::vector<double> lat_us(stream.size());
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::uint64_t> wire_hits{0};
    std::atomic<bool> failed{false};
    const auto load_t0 = clock_type::now();
    {
        std::vector<std::thread> workers;
        for (unsigned c = 0; c < clients; ++c) {
            workers.emplace_back([&] {
                const int fd = connect_fd();
                for (;;) {
                    const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= stream.size()) break;
                    const auto t0 = clock_type::now();
                    const std::string reply = answer_via(fd, stream[i].canonical_json());
                    lat_us[i] =
                        std::chrono::duration<double, std::micro>(clock_type::now() - t0)
                            .count();
                    if (reply.find("\"cache\":{\"hit\":true") != std::string::npos)
                        wire_hits.fetch_add(1, std::memory_order_relaxed);
                    else if (reply.find("schema_version") == std::string::npos)
                        failed.store(true, std::memory_order_relaxed);
                }
                if (fd >= 0) ::close(fd);
            });
        }
        for (auto& w : workers) w.join();
    }
    const double load_s =
        std::chrono::duration<double>(clock_type::now() - load_t0).count();
    if (failed.load()) {
        std::fprintf(stderr, "repeated phase: at least one request was not answered\n");
        return 1;
    }

    const double hit_rate = static_cast<double>(wire_hits.load()) /
                            static_cast<double>(stream.size());
    std::sort(lat_us.begin(), lat_us.end());
    std::sort(cold_us.begin(), cold_us.end());
    const double qps = static_cast<double>(stream.size()) / load_s;

    benchutil::Table table({"phase", "requests", "qps", "p50_us", "p99_us", "hit_rate"}, 12);
    table.print_header();
    table.print_row({"cold", std::to_string(pool.size()),
                     benchutil::fmt(static_cast<double>(pool.size()) / cold_s, "%.0f"),
                     benchutil::fmt(percentile(cold_us, 0.5), "%.1f"),
                     benchutil::fmt(percentile(cold_us, 0.99), "%.1f"), "0.00"});
    table.print_row({"repeated", std::to_string(stream.size()), benchutil::fmt(qps, "%.0f"),
                     benchutil::fmt(percentile(lat_us, 0.5), "%.1f"),
                     benchutil::fmt(percentile(lat_us, 0.99), "%.1f"),
                     benchutil::fmt(hit_rate, "%.2f")});

    // ---- contract checks --------------------------------------------------
    // 1. Hit rate: the 95/5 mix must be served >= 90% from the store.
    if (hit_rate < 0.90) {
        std::fprintf(stderr, "\nFAIL: cache hit rate %.3f < 0.90 on the repeated mix\n",
                     hit_rate);
        return 1;
    }
    // 2. Byte identity: served bytes == a fresh evaluator's cold computation
    //    under the cache-hit mask, for a sample of the pool.
    {
        lab::Evaluator fresh_eval;
        const std::size_t sample = smoke ? 3 : 5;
        const int fd = connect_fd();
        for (std::size_t i = 0; i < sample && i < pool.size(); ++i) {
            const std::string served =
                lab::mask_cache_hit(answer_via(fd, pool[i].canonical_json()));
            const std::string cold = fresh_eval.evaluate(pool[i]).to_canonical_json();
            if (served != cold) {
                std::fprintf(stderr,
                             "\nFAIL: scenario %zu served bytes differ from a cold "
                             "computation (key %s)\n",
                             i, pool[i].store_key().c_str());
                return 1;
            }
        }
        if (fd >= 0) ::close(fd);
        std::printf("\nbyte-identity: %zu sampled answers match a cold evaluator "
                    "exactly\n", sample);
    }

    perf::RunReport rep = perf::report("bench_lab_load");
    perf::Case cold_case;
    cold_case.labels["phase"] = "cold";
    cold_case.values["requests"] = static_cast<double>(pool.size());
    cold_case.values["qps"] = static_cast<double>(pool.size()) / cold_s;
    cold_case.values["p50_us"] = percentile(cold_us, 0.5);
    cold_case.values["p99_us"] = percentile(cold_us, 0.99);
    cold_case.values["hit_rate"] = 0.0;
    rep.cases.push_back(std::move(cold_case));
    perf::Case rep_case;
    rep_case.labels["phase"] = "repeated";
    rep_case.values["requests"] = static_cast<double>(stream.size());
    rep_case.values["clients"] = static_cast<double>(clients);
    rep_case.values["qps"] = qps;
    rep_case.values["p50_us"] = percentile(lat_us, 0.5);
    rep_case.values["p99_us"] = percentile(lat_us, 0.99);
    rep_case.values["hit_rate"] = hit_rate;
    rep_case.values["distinct"] = static_cast<double>(pool.size());
    rep.cases.push_back(std::move(rep_case));
    if (cli.connect.empty()) {
        const lab::Service::Stats s = service.stats();
        perf::Case svc_case;
        svc_case.labels["phase"] = "service_totals";
        svc_case.values["queries"] = static_cast<double>(s.queries);
        svc_case.values["hits"] = static_cast<double>(s.hits);
        svc_case.values["misses"] = static_cast<double>(s.misses);
        svc_case.values["errors"] = static_cast<double>(s.errors);
        svc_case.values["store_entries"] = static_cast<double>(service.store().size());
        svc_case.values["probe_runs"] =
            static_cast<double>(service.evaluator().probe_runs());
        rep.cases.push_back(std::move(svc_case));
        std::printf("service totals: %llu queries, %llu hits, %llu misses "
                    "(%zu store entries, %zu probe runs)\n",
                    static_cast<unsigned long long>(s.queries),
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses), service.store().size(),
                    service.evaluator().probe_runs());
    }
    cli.finish(std::move(rep));
    return 0;
}
