/// Figure 1: speed of dcopy in MB/s against array size, PC vs supercomputers.
#include "blas_sweep.hpp"

int main() {
    const blas_sweep::Kernel k{"Figure 1", "dcopy", "MB/sec", false, machine::shape_dcopy,
                               blas_sweep::host_rate_dcopy};
    blas_sweep::run(k, blas_sweep::level1_sizes());
    return 0;
}
