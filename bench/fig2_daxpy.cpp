/// Figure 2: speed of daxpy in MFlop/s against array size.
#include "blas_sweep.hpp"

int main() {
    const blas_sweep::Kernel k{"Figure 2", "daxpy", "Mflop/sec", false, machine::shape_daxpy,
                               blas_sweep::host_rate_daxpy};
    blas_sweep::run(k, blas_sweep::level1_sizes());
    return 0;
}
