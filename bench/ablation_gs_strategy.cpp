/// Ablation: the Tufo-Fischer GS library's pairwise/tree mix against a
/// tree-only baseline, on the ALE solver's actual interface-dof pattern.
/// "Pairwise exchange is used for communicating values shared by only a few
/// processors, while the binary-tree approach is used for values shared by
/// many processors" (paper §4.2.2) — this bench quantifies why the mix wins.
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "gs/gather_scatter.hpp"
#include "mesh/generators.hpp"
#include "nektar/dofmap.hpp"
#include "partition/partition.hpp"
#include "simmpi/simmpi.hpp"

namespace {

/// Builds the per-rank interface gid lists of a partitioned mesh at the
/// given order (the pattern AleNS2d hands to the GS library).
std::vector<std::vector<std::int64_t>> interface_ids(const mesh::Mesh& m, std::size_t order,
                                                     const std::vector<int>& part, int nprocs) {
    const nektar::DofMap dm(m, order, false);
    std::vector<std::vector<std::int64_t>> ids(static_cast<std::size_t>(nprocs));
    std::vector<std::set<std::int64_t>> sets(static_cast<std::size_t>(nprocs));
    for (std::size_t e = 0; e < m.num_elements(); ++e) {
        auto& s = sets[static_cast<std::size_t>(part[e])];
        for (const auto& ld : dm.element_map(e)) s.insert(ld.global);
    }
    for (int r = 0; r < nprocs; ++r)
        ids[static_cast<std::size_t>(r)].assign(sets[static_cast<std::size_t>(r)].begin(),
                                                sets[static_cast<std::size_t>(r)].end());
    return ids;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("ablation_gs_strategy", argc, argv);
    const auto m = mesh::flapping_body_mesh(3);
    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);

    std::printf("Ablation: GS exchange strategy on the ALE interface pattern\n");
    std::printf("Mesh: %s, order 4\n\n", m.summary().c_str());
    benchutil::Table table({"P", "strategy", "pairwise dofs", "tree dofs", "sum wall us"},
                           15);
    table.print_header();

    perf::RunReport rep = perf::report("ablation_gs_strategy");
    for (int nprocs : cli.rank_sweep({4, 8, 16})) {
        const auto part = partition::partition_graph(g, nprocs);
        const auto ids = interface_ids(m, 4, part, nprocs);
        for (auto strat : {gs::GatherScatter::Strategy::Auto,
                           gs::GatherScatter::Strategy::TreeOnly}) {
            simmpi::World world(nprocs, netsim::by_name("RoadRunner myr."));
            std::size_t pw = 0, tr = 0;
            const auto reports = world.run([&](simmpi::Comm& c) {
                gs::GatherScatter gsx(c, ids[static_cast<std::size_t>(c.rank())], strat);
                if (c.rank() == 0) {
                    pw = gsx.pairwise_dofs();
                    tr = gsx.tree_dofs();
                }
                std::vector<double> vals(ids[static_cast<std::size_t>(c.rank())].size(), 1.0);
                for (int it = 0; it < 10; ++it) gsx.sum(c, vals);
            });
            double wall = 0.0;
            for (const auto& r : reports) wall = std::max(wall, r.wall_seconds);
            table.print_row(
                {std::to_string(nprocs),
                 strat == gs::GatherScatter::Strategy::Auto ? "pairwise+tree" : "tree-only",
                 std::to_string(pw), std::to_string(tr),
                 benchutil::fmt(wall / 10.0 * 1e6, "%.1f")});
            perf::Case kase;
            kase.labels["strategy"] = strat == gs::GatherScatter::Strategy::Auto
                                          ? "pairwise+tree"
                                          : "tree-only";
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["pairwise_dofs"] = static_cast<double>(pw);
            kase.values["tree_dofs"] = static_cast<double>(tr);
            kase.values["sum_wall_us"] = wall / 10.0 * 1e6;
            rep.cases.push_back(std::move(kase));
        }
    }
    std::printf("\nThe tree-only baseline drags every interface dof through a global\n"
                "allreduce; the Tufo-Fischer mix keeps most dofs on cheap neighbour\n"
                "exchanges and reserves the tree for the few many-way corners.\n");
    cli.finish(std::move(rep));
    return 0;
}
