/// Figure 8: MPI_Alltoall average per-process bandwidth for 4 and 8
/// processors across the nine network configurations, measured the paper's
/// way: a globally synchronised loop of 100 Alltoall calls.  The analytic
/// sweep gives the full size ladder; a simmpi run (real data movement, timed
/// on the virtual clock) cross-checks selected sizes.
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/netpipe.hpp"
#include "simmpi/simmpi.hpp"

namespace {

void analytic_table(int nprocs) {
    std::printf("Figure 8 (%d processors): MPI_Alltoall average bandwidth (MB/sec)\n\n",
                nprocs);
    const auto& nets = netsim::alltoall_roster();
    std::vector<std::string> headers = {"msg bytes"};
    for (const auto& n : nets) headers.push_back(n.name);
    benchutil::Table table(headers, 21);
    table.print_header();
    for (std::size_t m = 8; m <= (8u << 20); m *= 8) {
        std::vector<std::string> row = {std::to_string(m)};
        for (const auto& n : nets)
            row.push_back(benchutil::fmt(n.alltoall_bandwidth_mbps(nprocs, m), "%.2f"));
        table.print_row(row);
    }
    std::printf("\n");
}

/// The paper's measurement loop over the simulated runtime.
double measured_alltoall_bandwidth(const netsim::NetworkModel& net, int nprocs,
                                   std::size_t msg_bytes) {
    const std::size_t block = msg_bytes / sizeof(double);
    simmpi::World world(nprocs, net);
    const int reps = 100;
    const auto reports = world.run([&](simmpi::Comm& c) {
        std::vector<double> send(static_cast<std::size_t>(c.size()) * block, 1.0);
        std::vector<double> recv(send.size());
        c.barrier(); // global synchronisation, as in the paper
        for (int r = 0; r < reps; ++r) c.alltoall(send, recv, block);
    });
    double max_wall = 0.0;
    for (const auto& r : reports) max_wall = std::max(max_wall, r.wall_seconds);
    return static_cast<double>(nprocs - 1) * static_cast<double>(msg_bytes) *
           static_cast<double>(reps) / max_wall / 1e6;
}

void simmpi_crosscheck(int nprocs) {
    std::printf("Cross-check at %d procs: 100-rep simmpi Alltoall loop vs model (64 KB)\n\n",
                nprocs);
    benchutil::Table table({"network", "model MB/s", "simmpi MB/s"}, 22);
    table.print_header();
    for (const auto& net : netsim::alltoall_roster()) {
        const std::size_t bytes = 64 * 1024;
        table.print_row({net.name,
                         benchutil::fmt(net.alltoall_bandwidth_mbps(nprocs, bytes), "%.2f"),
                         benchutil::fmt(measured_alltoall_bandwidth(net, nprocs, bytes),
                                        "%.2f")});
    }
    std::printf("\n");
}

} // namespace

int main() {
    analytic_table(4);
    analytic_table(8);
    simmpi_crosscheck(4);
    simmpi_crosscheck(8);
    std::printf("HITACHI SR8000 (paper text): minimum recorded Alltoall bandwidth "
                "%.0f MB/s at 6,400,000 bytes (ours: %.0f MB/s)\n",
                450.0,
                netsim::by_name("HITACHI").alltoall_bandwidth_mbps(8, 6'400'000));
    return 0;
}
