#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

/// \file bench_util.hpp
/// Shared helpers for the paper-reproduction benchmark binaries: simple
/// aligned-column table printing and a repeat-until-stable host timer.
namespace benchutil {

/// Prints a header followed by rows of fixed-width columns.
class Table {
public:
    explicit Table(std::vector<std::string> headers, int width = 12)
        : headers_(std::move(headers)), width_(width) {}

    void print_header() const {
        for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < headers_.size(); ++i)
            std::printf("%*s", width_, "--------");
        std::printf("\n");
    }

    void print_row(const std::vector<std::string>& cells) const {
        for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
        std::printf("\n");
    }

private:
    std::vector<std::string> headers_;
    int width_;
};

[[nodiscard]] inline std::string fmt(double v, const char* spec = "%.1f") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

/// Times `fn` by repeating it until at least `min_seconds` has elapsed;
/// returns seconds per call.
[[nodiscard]] inline double time_per_call(const std::function<void()>& fn,
                                          double min_seconds = 0.02) {
    using clock = std::chrono::steady_clock;
    fn(); // warm the caches, as the paper's in-cache methodology requires
    std::size_t reps = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < reps; ++i) fn();
        const double dt = std::chrono::duration<double>(clock::now() - t0).count();
        if (dt >= min_seconds) return dt / static_cast<double>(reps);
        reps = dt > 0.0 ? static_cast<std::size_t>(static_cast<double>(reps) *
                                                   (1.2 * min_seconds / dt)) + 1
                        : reps * 8;
    }
}

} // namespace benchutil
