#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "lab/scenario.hpp"
#include "obs/trace.hpp"
#include "perf/report.hpp"

/// \file bench_util.hpp
/// Shared helpers for the paper-reproduction benchmark binaries: the common
/// command line (every bench accepts the same flags), RunReport emission,
/// aligned-column table printing, and a repeat-until-stable host timer.
///
/// Since the cluster-lab PR the run description lives in ONE place: a
/// lab::ScenarioRequest held by Cli.  The per-field flags (--machine, --net,
/// --ranks, ...) are conveniences that edit that request, and --request
/// accepts the canonical JSON directly, so a bench invocation and a lab
/// query are the same value — every emitted RunReport echoes it (schema v2
/// `request` block) along with its store key.
namespace benchutil {

/// Prints a header followed by rows of fixed-width columns.
class Table {
public:
    explicit Table(std::vector<std::string> headers, int width = 12)
        : headers_(std::move(headers)), width_(width) {}

    void print_header() const {
        for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < headers_.size(); ++i)
            std::printf("%*s", width_, "--------");
        std::printf("\n");
    }

    void print_row(const std::vector<std::string>& cells) const {
        for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
        std::printf("\n");
    }

private:
    std::vector<std::string> headers_;
    int width_;
};

[[nodiscard]] inline std::string fmt(double v, const char* spec = "%.1f") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

/// The shared benchmark command line.  Every bench accepts:
///   --request <json|@file> the run as canonical ScenarioRequest JSON (per-
///                          field flags below override on top, in order)
///   --out <path>          RunReport destination (default <bench>_report.json)
///   --trace               enable obs tracing; write Chrome trace_event JSON
///   --trace-out <path>    trace destination (default <bench>_trace.json)
///   --machine <name>      restrict platform sweeps to matching machines
///   --net <name>          restrict platform sweeps to matching networks
///   --ranks <N>           restrict processor-count sweeps to N
///   --seed <N>            seed for fault models / synthetic inputs
///   --smoke               shrink the sweep for per-commit CI
///   --solver <name>       serial | fourier | ale (lab queries)
///   --fidelity <name>     model | measured (lab queries)
///   --backend <name>      dense | sumfact compute backend
///   --fault <name>        named fault profile (lab/fault_profiles.hpp)
///   --transpose <name>    slab | pencil
///   --dof-per-rank <N>    problem size per processor (lab queries)
///   --steps <N>           steady steps for measured fidelity
///   --min-seconds <s>     timing window per measurement
///   --store <dir>         RunReport store directory (lab tools)
///   --connect <path>      lab daemon socket to query instead of computing
///   --clients <N> / --requests <N> / --distinct <N>   bench_lab_load mix
/// Flags a bench has no use for still parse (and land in the report's
/// request echo) so the CLI is uniform across binaries.
struct Cli {
    std::string bench;            ///< benchmark id (RunReport::bench)
    lab::ScenarioRequest request; ///< THE run descriptor (single source)
    std::string out;              ///< "" = the bench's default path
    bool trace = false;
    std::string trace_out;        ///< "" = "<bench>_trace.json"
    double min_seconds = 0.0;     ///< 0 = the bench's default window
    std::string store;            ///< RunReport store dir ("" = memory-only)
    std::string connect;          ///< lab daemon socket path ("" = in-process)
    int clients = 0;              ///< bench_lab_load: concurrent clients
    int requests = 0;             ///< bench_lab_load: total requests
    int distinct = 0;             ///< bench_lab_load: distinct scenarios

    static Cli parse(const char* bench_name, int argc, char** argv) {
        Cli cli;
        cli.bench = bench_name;
        const auto need = [&](int& i) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", bench_name, argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        for (int i = 1; i < argc; ++i) {
            const char* a = argv[i];
            if (std::strcmp(a, "--request") == 0) {
                std::string text = need(i);
                if (!text.empty() && text[0] == '@') {
                    std::ifstream in(text.substr(1));
                    if (!in) {
                        std::fprintf(stderr, "%s: cannot read %s\n", bench_name,
                                     text.c_str() + 1);
                        std::exit(2);
                    }
                    std::ostringstream body;
                    body << in.rdbuf();
                    text = body.str();
                }
                try {
                    cli.request = lab::ScenarioRequest::parse(text);
                } catch (const std::exception& e) {
                    std::fprintf(stderr, "%s: bad --request: %s\n", bench_name, e.what());
                    std::exit(2);
                }
            }
            else if (std::strcmp(a, "--out") == 0) cli.out = need(i);
            else if (std::strcmp(a, "--trace") == 0) cli.trace = true;
            else if (std::strcmp(a, "--trace-out") == 0) cli.trace_out = need(i);
            else if (std::strcmp(a, "--machine") == 0) cli.request.machine = need(i);
            else if (std::strcmp(a, "--net") == 0) cli.request.net = need(i);
            else if (std::strcmp(a, "--ranks") == 0) cli.request.ranks = std::atoi(need(i));
            else if (std::strcmp(a, "--seed") == 0)
                cli.request.seed = std::strtoull(need(i), nullptr, 10);
            else if (std::strcmp(a, "--smoke") == 0) cli.request.smoke = true;
            else if (std::strcmp(a, "--solver") == 0) cli.request.solver = need(i);
            else if (std::strcmp(a, "--fidelity") == 0) cli.request.fidelity = need(i);
            else if (std::strcmp(a, "--backend") == 0) cli.request.backend = need(i);
            else if (std::strcmp(a, "--fault") == 0) cli.request.fault = need(i);
            else if (std::strcmp(a, "--transpose") == 0) cli.request.transpose = need(i);
            else if (std::strcmp(a, "--dof-per-rank") == 0)
                cli.request.dof_per_rank = std::atof(need(i));
            else if (std::strcmp(a, "--steps") == 0) cli.request.steps = std::atoi(need(i));
            else if (std::strcmp(a, "--min-seconds") == 0) cli.min_seconds = std::atof(need(i));
            else if (std::strcmp(a, "--store") == 0) cli.store = need(i);
            else if (std::strcmp(a, "--connect") == 0) cli.connect = need(i);
            else if (std::strcmp(a, "--clients") == 0) cli.clients = std::atoi(need(i));
            else if (std::strcmp(a, "--requests") == 0) cli.requests = std::atoi(need(i));
            else if (std::strcmp(a, "--distinct") == 0) cli.distinct = std::atoi(need(i));
            else {
                std::fprintf(stderr, "%s: unknown flag %s\n", bench_name, a);
                std::exit(2);
            }
        }
        cli.request.bench = bench_name; // the binary knows who it is
        try {
            cli.request.validate();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: %s\n", bench_name, e.what());
            std::exit(2);
        }
        if (cli.trace) obs::tracer().enable();
        return cli;
    }

    /// DEPRECATED free-form filter lookup (pre-ScenarioRequest API).  Kept
    /// for one release as an alias so out-of-tree bench forks keep building;
    /// it warns once at runtime and forwards to the request semantics.  Use
    /// Cli::request.selects_machine()/selects_net() (or parse a canonical
    /// request via lab::ScenarioRequest::parse) instead.
    [[deprecated("use Cli::request.selects_machine/selects_net; free-form string "
                 "lookups are replaced by lab::ScenarioRequest")]]
    [[nodiscard]] static bool matches(const std::string& filter, const std::string& name) {
        static const bool warned = [] {
            std::fprintf(stderr, "benchutil::Cli::matches is deprecated: build a "
                                 "lab::ScenarioRequest and use selects_machine/"
                                 "selects_net\n");
            return true;
        }();
        (void)warned;
        return filter.empty() || name.find(filter) != std::string::npos;
    }
    [[nodiscard]] bool machine_selected(const std::string& name) const {
        return request.selects_machine(name);
    }
    [[nodiscard]] bool net_selected(const std::string& name) const {
        return request.selects_net(name);
    }

    /// Processor-count sweep after the --ranks restriction.
    [[nodiscard]] std::vector<int> rank_sweep(std::vector<int> defaults) const {
        return request.rank_sweep(std::move(defaults));
    }

    /// Stamps the request echo and the shared flags into the report.
    void stamp(perf::RunReport& rep) const {
        rep.bench = bench;
        rep.request_json = request.canonical_json();
        rep.store_key = request.store_key();
        if (!request.machine.empty()) rep.meta["machine_filter"] = request.machine;
        if (!request.net.empty()) rep.meta["net_filter"] = request.net;
        if (request.ranks > 0) rep.meta["ranks"] = std::to_string(request.ranks);
        if (request.seed != 0) rep.meta["seed"] = std::to_string(request.seed);
        rep.meta["smoke"] = request.smoke ? "1" : "0";
        rep.meta["trace"] = trace ? "1" : "0";
    }

    /// Writes the RunReport (to --out or `default_path`), plus the Chrome
    /// trace JSON when --trace was given, and prints where they went.
    void finish(perf::RunReport rep, const std::string& default_path = "") const {
        stamp(rep);
        const std::string path =
            !out.empty() ? out : (!default_path.empty() ? default_path : bench + "_report.json");
        rep.write_json(path);
        std::printf("\nwrote %s\n", path.c_str());
        if (trace) {
            const std::string tpath = !trace_out.empty() ? trace_out : bench + "_trace.json";
            const std::string json = obs::tracer().chrome_json();
            if (std::FILE* f = std::fopen(tpath.c_str(), "w")) {
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                            tpath.c_str());
            } else {
                std::fprintf(stderr, "%s: cannot write %s\n", bench.c_str(), tpath.c_str());
            }
        }
    }
};

/// Times `fn` by repeating it until at least `min_seconds` has elapsed;
/// returns seconds per call.
[[nodiscard]] inline double time_per_call(const std::function<void()>& fn,
                                          double min_seconds = 0.02) {
    using clock = std::chrono::steady_clock;
    fn(); // warm the caches, as the paper's in-cache methodology requires
    std::size_t reps = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < reps; ++i) fn();
        const double dt = std::chrono::duration<double>(clock::now() - t0).count();
        if (dt >= min_seconds) return dt / static_cast<double>(reps);
        reps = dt > 0.0 ? static_cast<std::size_t>(static_cast<double>(reps) *
                                                   (1.2 * min_seconds / dt)) + 1
                        : reps * 8;
    }
}

} // namespace benchutil
