#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "perf/report.hpp"

/// \file bench_util.hpp
/// Shared helpers for the paper-reproduction benchmark binaries: the common
/// command line (every bench accepts the same flags), RunReport emission,
/// aligned-column table printing, and a repeat-until-stable host timer.
namespace benchutil {

/// Prints a header followed by rows of fixed-width columns.
class Table {
public:
    explicit Table(std::vector<std::string> headers, int width = 12)
        : headers_(std::move(headers)), width_(width) {}

    void print_header() const {
        for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < headers_.size(); ++i)
            std::printf("%*s", width_, "--------");
        std::printf("\n");
    }

    void print_row(const std::vector<std::string>& cells) const {
        for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
        std::printf("\n");
    }

private:
    std::vector<std::string> headers_;
    int width_;
};

[[nodiscard]] inline std::string fmt(double v, const char* spec = "%.1f") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

/// The shared benchmark command line.  Every bench accepts:
///   --out <path>          RunReport destination (default <bench>_report.json)
///   --trace               enable obs tracing; write Chrome trace_event JSON
///   --trace-out <path>    trace destination (default <bench>_trace.json)
///   --machine <name>      restrict platform sweeps to matching machines
///   --net <name>          restrict platform sweeps to matching networks
///   --ranks <N>           restrict processor-count sweeps to N
///   --seed <N>            seed for fault models / synthetic inputs
///   --smoke               shrink the sweep for per-commit CI
///   --min-seconds <s>     timing window per measurement
/// Flags a bench has no use for still parse (and land in the report's meta)
/// so the CLI is uniform across binaries.
struct Cli {
    std::string bench;     ///< benchmark id (RunReport::bench)
    std::string out;       ///< "" = the bench's default path
    bool trace = false;
    std::string trace_out; ///< "" = "<bench>_trace.json"
    std::string machine;   ///< "" = all machines
    std::string net;       ///< "" = all networks
    int ranks = 0;         ///< 0 = the bench's default sweep
    unsigned long seed = 0;
    bool smoke = false;
    double min_seconds = 0.0; ///< 0 = the bench's default window

    static Cli parse(const char* bench_name, int argc, char** argv) {
        Cli cli;
        cli.bench = bench_name;
        const auto need = [&](int& i) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", bench_name, argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        for (int i = 1; i < argc; ++i) {
            const char* a = argv[i];
            if (std::strcmp(a, "--out") == 0) cli.out = need(i);
            else if (std::strcmp(a, "--trace") == 0) cli.trace = true;
            else if (std::strcmp(a, "--trace-out") == 0) cli.trace_out = need(i);
            else if (std::strcmp(a, "--machine") == 0) cli.machine = need(i);
            else if (std::strcmp(a, "--net") == 0) cli.net = need(i);
            else if (std::strcmp(a, "--ranks") == 0) cli.ranks = std::atoi(need(i));
            else if (std::strcmp(a, "--seed") == 0)
                cli.seed = std::strtoul(need(i), nullptr, 10);
            else if (std::strcmp(a, "--smoke") == 0) cli.smoke = true;
            else if (std::strcmp(a, "--min-seconds") == 0) cli.min_seconds = std::atof(need(i));
            else {
                std::fprintf(stderr, "%s: unknown flag %s\n", bench_name, a);
                std::exit(2);
            }
        }
        if (cli.trace) obs::tracer().enable();
        return cli;
    }

    /// Case-insensitive-ish substring filter used by the platform sweeps:
    /// true when no filter is set or `name` contains it.
    [[nodiscard]] static bool matches(const std::string& filter, const std::string& name) {
        return filter.empty() || name.find(filter) != std::string::npos;
    }
    [[nodiscard]] bool machine_selected(const std::string& name) const {
        return matches(machine, name);
    }
    [[nodiscard]] bool net_selected(const std::string& name) const { return matches(net, name); }

    /// Processor-count sweep after the --ranks restriction.
    [[nodiscard]] std::vector<int> rank_sweep(std::vector<int> defaults) const {
        if (ranks > 0) return {ranks};
        return defaults;
    }

    /// Stamps the shared flags into the report's meta block.
    void stamp(perf::RunReport& rep) const {
        rep.bench = bench;
        if (!machine.empty()) rep.meta["machine_filter"] = machine;
        if (!net.empty()) rep.meta["net_filter"] = net;
        if (ranks > 0) rep.meta["ranks"] = std::to_string(ranks);
        if (seed != 0) rep.meta["seed"] = std::to_string(seed);
        rep.meta["smoke"] = smoke ? "1" : "0";
        rep.meta["trace"] = trace ? "1" : "0";
    }

    /// Writes the RunReport (to --out or `default_path`), plus the Chrome
    /// trace JSON when --trace was given, and prints where they went.
    void finish(perf::RunReport rep, const std::string& default_path = "") const {
        stamp(rep);
        const std::string path =
            !out.empty() ? out : (!default_path.empty() ? default_path : bench + "_report.json");
        rep.write_json(path);
        std::printf("\nwrote %s\n", path.c_str());
        if (trace) {
            const std::string tpath = !trace_out.empty() ? trace_out : bench + "_trace.json";
            const std::string json = obs::tracer().chrome_json();
            if (std::FILE* f = std::fopen(tpath.c_str(), "w")) {
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                            tpath.c_str());
            } else {
                std::fprintf(stderr, "%s: cannot write %s\n", bench.c_str(), tpath.c_str());
            }
        }
    }
};

/// Times `fn` by repeating it until at least `min_seconds` has elapsed;
/// returns seconds per call.
[[nodiscard]] inline double time_per_call(const std::function<void()>& fn,
                                          double min_seconds = 0.02) {
    using clock = std::chrono::steady_clock;
    fn(); // warm the caches, as the paper's in-cache methodology requires
    std::size_t reps = 1;
    for (;;) {
        const auto t0 = clock::now();
        for (std::size_t i = 0; i < reps; ++i) fn();
        const double dt = std::chrono::duration<double>(clock::now() - t0).count();
        if (dt >= min_seconds) return dt / static_cast<double>(reps);
        reps = dt > 0.0 ? static_cast<std::size_t>(static_cast<double>(reps) *
                                                   (1.2 * min_seconds / dt)) + 1
                        : reps * 8;
    }
}

} // namespace benchutil
