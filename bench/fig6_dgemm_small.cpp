/// Figure 6: speed of dgemm in MFlop/s for the small matrices (n = 2..20)
/// that dominate NekTar's elemental operations.
#include "blas_sweep.hpp"

int main() {
    std::vector<std::size_t> sizes;
    for (std::size_t n = 2; n <= 20; ++n) sizes.push_back(n);
    const blas_sweep::Kernel k{"Figure 6", "dgemm", "Mflop/sec", true, machine::shape_dgemm,
                               blas_sweep::host_rate_dgemm};
    blas_sweep::run(k, sizes);
    return 0;
}
