/// Figure 5: speed of dgemm in MFlop/s against matrix size (up to ~600).
#include "blas_sweep.hpp"

int main() {
    const blas_sweep::Kernel k{"Figure 5", "dgemm", "Mflop/sec", true, machine::shape_dgemm,
                               blas_sweep::host_rate_dgemm};
    blas_sweep::run(k, {8, 16, 32, 64, 96, 128, 192, 256, 384, 512});
    return 0;
}
