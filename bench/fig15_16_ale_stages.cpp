/// Figures 15-16: NekTar-ALE stage percentages within a time step for the
/// flapping-wing run at 16 and 64 processors, grouped as the paper does:
///   a = steps 1-4 and 6 (transforms, nonlinear + mesh update, RHS setups)
///   b = step 5 (pressure PCG)
///   c = step 7 (viscous + mesh-velocity Helmholtz PCG)
/// Shape to reproduce: a ~6-9%, b ~40-42%, c ~50-55%, and CPU/wall pies
/// nearly identical (the GS library's pairwise/tree exchanges are cheap next
/// to the solves).
#include <cmath>
#include <cstdio>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_ale.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("fig15_16_ale_stages", argc, argv);
    const auto m = mesh::flapping_body_mesh(3);
    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);

    netsim::NetworkModel probe;
    probe.name = "probe";
    probe.latency_us = 10.0;
    probe.bandwidth_mbps = 100.0;

    std::printf("Figures 15-16: NekTar-ALE stage percentages (a / b / c).\n");
    std::printf("Paper: 16 procs NCSA 9/41/50, RR-myr 6/42/53;  64 procs NCSA 8/40/52, "
                "RR-myr 3/42/55.\n\n");

    perf::RunReport rep = perf::report("fig15_16_ale_stages");
    perf::StageBreakdown last_bd;
    bool traced = false; // --trace records the first (smallest-P) run only
    for (int nprocs : cli.rank_sweep({4, 16})) {
        const auto part = partition::partition_graph(g, nprocs);
        perf::StageBreakdown bd;
        simmpi::CommLog log;
        std::size_t field_bytes = 0, solver_bytes = 0;
        simmpi::World world(nprocs, probe);
        const auto reports = world.run([&](simmpi::Comm& c) {
            nektar::AleOptions opts;
            opts.dt = 2e-3;
            opts.viscosity = 0.01;
            opts.cg.tolerance = 1e-8;
            opts.trace = cli.trace && !traced;
            opts.body_velocity = [](double t) { return 0.3 * std::sin(4.0 * t); };
            opts.u_bc = [](double x, double y, double) {
                const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
                return body ? 0.0 : 1.0;
            };
            opts.v_bc = [&opts](double x, double y, double t) {
                const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
                return body ? opts.body_velocity(t) : 0.0;
            };
            nektar::AleNS2d ns(m, 4, opts, &c, &part);
            ns.set_initial([](double, double) { return 1.0; },
                           [](double, double) { return 0.0; });
            ns.step();
            ns.breakdown() = {};
            ns.step();
            ns.step();
            if (c.rank() == 0) {
                bd = ns.breakdown();
                field_bytes = ns.disc().quad_size() * sizeof(double);
                std::size_t mat_bytes = 0;
                for (std::size_t e = 0; e < ns.disc().num_elements(); ++e) {
                    const std::size_t nm = ns.disc().ops(e).num_modes();
                    mat_bytes += 2 * nm * nm * sizeof(double);
                }
                solver_bytes = mat_bytes;
            }
        });
        log = reports[0].log;
        if (cli.trace && !traced) obs::tracer().disable(); // one traced run only
        traced = true;
        last_bd = bd;
        // The solver defaults to the nonblocking GS exchange: fold the hidden
        // comm seconds (priced on the probe network) into the breakdown.
        for (const auto& [stage, hidden] : reports[0].overlap_log)
            bd.add_comm_overlap(static_cast<std::size_t>(stage), hidden);
        const auto shapes = app_model::solver_shapes(field_bytes, solver_bytes);
        const auto probe_splits = app_model::comm_stage_splits(log, probe, nprocs);

        for (const auto& pl : std::vector<app_model::Platform>{
                 {"NCSA", "NCSA", "NCSA"},
                 {"RoadRunner myr.", "RoadRunner", "RoadRunner myr."}}) {
            if (!cli.machine_selected(pl.machine) || !cli.net_selected(pl.network))
                continue;
            const auto& mm = machine::by_name(pl.machine);
            const auto& net = netsim::by_name(pl.network);
            const auto comp = app_model::compute_stage_seconds(bd, mm, shapes);
            const auto splits = app_model::comm_stage_splits(log, net, nprocs);
            // Per-stage wall: comp + comm - recovered, where the nonblocking
            // GS exchanges earn back the hidden fraction of their overlapped
            // price on networks that free the CPU during transfers.
            std::array<double, perf::kNumStages + 1> wall_s{}, cpu_s{}, recov_s{};
            double recov_total = 0.0;
            for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
                const double rho = app_model::overlap_efficiency(
                    bd.overlap_seconds[s], probe_splits[s].overlapped);
                recov_s[s] = app_model::recovered_seconds(rho, splits[s].overlapped,
                                                          net.cpu_poll_fraction);
                cpu_s[s] = comp[s] + splits[s].total() * net.cpu_poll_fraction;
                wall_s[s] = comp[s] + splits[s].total() - recov_s[s];
                recov_total += recov_s[s];
            }
            // Bucket by the shared perf taxonomy instead of hardcoding the
            // stage sets (a = setup, b = pressure solve, c = viscous solve).
            double a_cpu = 0.0, b_cpu = 0.0, c_cpu = 0.0;
            double a_wall = 0.0, b_wall = 0.0, c_wall = 0.0;
            for (std::size_t s : perf::stages_in_group(perf::StageGroup::Setup)) {
                a_cpu += cpu_s[s];
                a_wall += wall_s[s];
            }
            for (std::size_t s : perf::stages_in_group(perf::StageGroup::PressureSolve)) {
                b_cpu += cpu_s[s];
                b_wall += wall_s[s];
            }
            for (std::size_t s : perf::stages_in_group(perf::StageGroup::ViscousSolve)) {
                c_cpu += cpu_s[s];
                c_wall += wall_s[s];
            }
            const double tc = a_cpu + b_cpu + c_cpu;
            const double tw = a_wall + b_wall + c_wall;
            std::printf("P = %d, %s:  CPU  a %.0f%%  b %.0f%%  c %.0f%%   |   "
                        "wall  a %.0f%%  b %.0f%%  c %.0f%%   |   "
                        "overlap recovers %.1f ms/step\n",
                        nprocs, pl.label.c_str(), 100.0 * a_cpu / tc, 100.0 * b_cpu / tc,
                        100.0 * c_cpu / tc, 100.0 * a_wall / tw, 100.0 * b_wall / tw,
                        100.0 * c_wall / tw, 1e3 * recov_total / bd.steps);
            perf::Case kase;
            kase.labels["platform"] = pl.label;
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["cpu_percent.setup"] = 100.0 * a_cpu / tc;
            kase.values["cpu_percent.pressure"] = 100.0 * b_cpu / tc;
            kase.values["cpu_percent.viscous"] = 100.0 * c_cpu / tc;
            kase.values["wall_percent.setup"] = 100.0 * a_wall / tw;
            kase.values["wall_percent.pressure"] = 100.0 * b_wall / tw;
            kase.values["wall_percent.viscous"] = 100.0 * c_wall / tw;
            kase.values["recovered_ms_per_step"] = 1e3 * recov_total / bd.steps;
            rep.cases.push_back(std::move(kase));
        }
        std::printf("\n");
    }
    // Stage rows come from rank 0 of the last sweep run.
    perf::RunReport out = perf::report("fig15_16_ale_stages", &last_bd);
    out.cases = std::move(rep.cases);
    cli.finish(std::move(out));
    return 0;
}
