#!/usr/bin/env python3
"""Byte-for-byte comparison of two repro run directories.

Companion to bench/repro.py: after regenerating the figure reports twice,

  check_determinism.py runA runB --normalize-host-times

asserts every file the two directories share is identical.  JSON reports
are compared either raw (--strict bytes) or, with --normalize-host-times,
after zeroing every host-measured duration — per-stage "host_seconds"
values and any metrics counter/gauge whose key names host_seconds —
mirroring perf::RunReport::to_canonical_json() on the C++ side.  Reports a
manifest.json (written by repro.py) marks non-deterministic are skipped
unless --strict.  Stdlib only.

Usage:
  check_determinism.py DIR_A DIR_B [--normalize-host-times] [--strict]
                       [--ignore GLOB]...
  check_determinism.py --self-test
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys
import tempfile


def normalize_host_times(doc):
    """Zeroes host-measured durations in a parsed RunReport-shaped dict."""
    if isinstance(doc, dict):
        out = {}
        for k, v in doc.items():
            if k == "host_seconds" and isinstance(v, (int, float)):
                out[k] = 0
            elif k in ("counters", "gauges") and isinstance(v, dict):
                out[k] = {mk: (0 if "host_seconds" in mk and isinstance(mv, (int, float)) else
                               normalize_host_times(mv))
                          for mk, mv in v.items()}
            else:
                out[k] = normalize_host_times(v)
        return out
    if isinstance(doc, list):
        return [normalize_host_times(v) for v in doc]
    return doc


def canonical_bytes(path: str, normalize: bool) -> bytes:
    with open(path, "rb") as f:
        raw = f.read()
    if not normalize or not path.endswith(".json"):
        return raw
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError:
        return raw
    return json.dumps(normalize_host_times(doc), sort_keys=True,
                      separators=(",", ":")).encode()


def load_manifest(d: str):
    p = os.path.join(d, "manifest.json")
    if not os.path.isfile(p):
        return None
    with open(p, "r", encoding="utf-8") as f:
        return json.load(f)


def listing(d: str, ignore: list[str]) -> set[str]:
    names = set()
    for root, _, files in os.walk(d):
        for f in files:
            rel = os.path.relpath(os.path.join(root, f), d)
            if not any(fnmatch.fnmatch(rel, pat) for pat in ignore):
                names.add(rel)
    return names


def compare(dir_a: str, dir_b: str, normalize: bool, strict: bool,
            ignore: list[str]) -> int:
    a_files = listing(dir_a, ignore)
    b_files = listing(dir_b, ignore)
    failures = []
    for only, where in ((a_files - b_files, dir_b), (b_files - a_files, dir_a)):
        for f in sorted(only):
            failures.append(f"{f}: missing from {where}")

    skip = set()
    if not strict:
        man_a, man_b = load_manifest(dir_a), load_manifest(dir_b)
        if man_a and man_b:
            for name, info in man_a.get("reports", {}).items():
                info_b = man_b.get("reports", {}).get(name, {})
                if not info.get("deterministic", True) or not info_b.get("deterministic", True):
                    skip.add(name)
                    print(f"[determinism] skipping {name} (marked non-deterministic)")

    for f in sorted(a_files & b_files):
        if f in skip:
            continue
        a = canonical_bytes(os.path.join(dir_a, f), normalize)
        b = canonical_bytes(os.path.join(dir_b, f), normalize)
        if a != b:
            failures.append(f"{f}: differs between {dir_a} and {dir_b}")

    for msg in failures:
        print(f"[determinism] FAIL: {msg}")
    if not failures:
        print(f"[determinism] OK: {len(a_files & b_files) - len(skip)} files byte-identical")
    return 1 if failures else 0


def self_test() -> int:
    """Builds pass/fail fixtures in a temp dir and checks both outcomes."""
    with tempfile.TemporaryDirectory() as tmp:
        a, b = os.path.join(tmp, "a"), os.path.join(tmp, "b")
        os.makedirs(a)
        os.makedirs(b)

        rep = {"bench": "x", "stages": [{"stage": 1, "host_seconds": 0.5}],
               "metrics": {"counters": {"stage.host_seconds": 1.25, "ops.flops": 10.0}}}
        rep2 = json.loads(json.dumps(rep))
        rep2["stages"][0]["host_seconds"] = 0.75       # host time differs...
        rep2["metrics"]["counters"]["stage.host_seconds"] = 2.0
        for d, r in ((a, rep), (b, rep2)):
            with open(os.path.join(d, "t.json"), "w", encoding="utf-8") as f:
                json.dump(r, f)

        if compare(a, b, normalize=False, strict=True, ignore=[]) == 0:
            print("[self-test] FAIL: raw comparison accepted differing host times")
            return 1
        if compare(a, b, normalize=True, strict=True, ignore=[]) != 0:
            print("[self-test] FAIL: normalization did not mask host times")
            return 1

        rep3 = json.loads(json.dumps(rep2))
        rep3["metrics"]["counters"]["ops.flops"] = 11.0  # a real divergence
        with open(os.path.join(b, "t.json"), "w", encoding="utf-8") as f:
            json.dump(rep3, f)
        if compare(a, b, normalize=True, strict=True, ignore=[]) == 0:
            print("[self-test] FAIL: a non-host difference slipped through")
            return 1

        with open(os.path.join(a, "only_here.txt"), "w", encoding="utf-8") as f:
            f.write("x")
        if compare(a, b, normalize=True, strict=True, ignore=["t.json"]) == 0:
            print("[self-test] FAIL: a missing file slipped through")
            return 1

        # manifest-driven skip of a non-deterministic report
        man = {"reports": {"t.json": {"deterministic": False}}}
        for d in (a, b):
            with open(os.path.join(d, "manifest.json"), "w", encoding="utf-8") as f:
                json.dump(man, f)
        os.remove(os.path.join(a, "only_here.txt"))
        if compare(a, b, normalize=True, strict=False, ignore=[]) != 0:
            print("[self-test] FAIL: manifest skip did not apply")
            return 1

    print("[self-test] OK")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("dirs", nargs="*", metavar="DIR")
    ap.add_argument("--normalize-host-times", action="store_true",
                    help="zero host-measured durations in *.json before comparing")
    ap.add_argument("--strict", action="store_true",
                    help="compare every file, ignoring manifest determinism flags")
    ap.add_argument("--ignore", action="append", default=[],
                    help="glob of relative paths to skip (repeatable)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if len(args.dirs) != 2:
        ap.error("exactly two directories required (or --self-test)")
    return compare(args.dirs[0], args.dirs[1], args.normalize_host_times,
                   args.strict, args.ignore)


if __name__ == "__main__":
    sys.exit(main())
