/// Hot-path microbenchmark of the elemental operator engines: per-element
/// dgemv loops versus the grouped dense dgemm batch versus the
/// sum-factorised tensor-contraction backend, for the modal->quad
/// transform, the weak inner product, and the modal gradient.  The sweep
/// runs orders 4-12 and reports the crossover order — the smallest order
/// from which sum factorisation stays ahead of the dense batch — in the
/// RunReport (top-level "crossover_order").  Writes machine-readable
/// results to BENCH_hotpath.json (CI uploads it as an artifact and gates
/// both engines against committed baselines; --smoke shrinks the sweep
/// for the per-commit job).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "compute/backend.hpp"
#include "mesh/generators.hpp"
#include "nektar/discretization.hpp"
#include "parallel/thread_pool.hpp"

namespace {

struct CaseResult {
    std::size_t order = 0, elements = 0, planes = 0;
    double per_elem_ms[3] = {};  // to_quad, weak_inner, grad
    double batched_ms[3] = {};   // dense batched engine (reference)
    double sumfact_ms[3] = {};   // sum-factorised engine
    [[nodiscard]] double per_elem_total() const {
        return per_elem_ms[0] + per_elem_ms[1] + per_elem_ms[2];
    }
    [[nodiscard]] double batched_total() const {
        return batched_ms[0] + batched_ms[1] + batched_ms[2];
    }
    [[nodiscard]] double sumfact_total() const {
        return sumfact_ms[0] + sumfact_ms[1] + sumfact_ms[2];
    }
    [[nodiscard]] double speedup() const { return per_elem_total() / batched_total(); }
    [[nodiscard]] double sumfact_speedup() const { return batched_total() / sumfact_total(); }
};

CaseResult run_case(std::size_t order, std::size_t nside, std::size_t planes,
                    double min_seconds) {
    const auto m = std::make_shared<mesh::Mesh>(
        mesh::rectangle_quads(nside, nside, 0.0, 1.0, 0.0, 1.0));
    const auto disc = std::make_shared<nektar::Discretization>(m, order);
    const std::size_t nm = disc->modal_size();
    const std::size_t nq = disc->quad_size();

    std::vector<double> modal(nm * planes), quad(nq * planes), rhs(nm * planes);
    std::vector<double> dx(nq * planes), dy(nq * planes);
    for (std::size_t i = 0; i < modal.size(); ++i)
        modal[i] = 1.0 + static_cast<double>(i % 17) * 0.25;
    for (std::size_t i = 0; i < quad.size(); ++i)
        quad[i] = 0.5 + static_cast<double>(i % 13) * 0.125;

    CaseResult r{order, disc->num_elements(), planes, {}, {}, {}};
    const std::size_t ne = disc->num_elements();

    const auto per_plane = [&](auto&& body) {
        for (std::size_t p = 0; p < planes; ++p)
            for (std::size_t e = 0; e < ne; ++e) body(p, e);
    };
    const auto mspan = [&](std::size_t p) {
        return std::span<const double>(modal).subspan(p * nm, nm);
    };

    // Per-element reference loops (the pre-batching hot path).
    r.per_elem_ms[0] = 1e3 * benchutil::time_per_call(
        [&] {
            per_plane([&](std::size_t p, std::size_t e) {
                disc->ops(e).interp_to_quad(
                    disc->modal_block(mspan(p), e),
                    disc->quad_block(std::span<double>(quad).subspan(p * nq, nq), e));
            });
        },
        min_seconds);
    r.per_elem_ms[1] = 1e3 * benchutil::time_per_call(
        [&] {
            std::fill(rhs.begin(), rhs.end(), 0.0);
            per_plane([&](std::size_t p, std::size_t e) {
                disc->ops(e).weak_inner(
                    disc->quad_block(std::span<const double>(quad).subspan(p * nq, nq), e),
                    disc->modal_block(std::span<double>(rhs).subspan(p * nm, nm), e));
            });
        },
        min_seconds);
    r.per_elem_ms[2] = 1e3 * benchutil::time_per_call(
        [&] {
            per_plane([&](std::size_t p, std::size_t e) {
                disc->ops(e).grad_from_modal(
                    disc->modal_block(mspan(p), e),
                    disc->quad_block(std::span<double>(dx).subspan(p * nq, nq), e),
                    disc->quad_block(std::span<double>(dy).subspan(p * nq, nq), e));
            });
        },
        min_seconds);

    // Both batched engines, pinned explicitly so the committed baselines stay
    // comparable whatever $REPRO_BACKEND the job exports.
    struct EngineTimes {
        compute::BackendKind kind;
        double* ms;
    };
    const EngineTimes engines[2] = {{compute::BackendKind::Dense, r.batched_ms},
                                    {compute::BackendKind::SumFactor, r.sumfact_ms}};
    for (const EngineTimes& eng : engines) {
        const compute::BackendKind k = eng.kind;
        eng.ms[0] = 1e3 * benchutil::time_per_call(
            [&] { disc->to_quad_planes(modal, quad, planes, k); }, min_seconds);
        eng.ms[1] = 1e3 * benchutil::time_per_call(
            [&] {
                std::fill(rhs.begin(), rhs.end(), 0.0);
                disc->weak_inner_planes(quad, rhs, planes, k);
            },
            min_seconds);
        eng.ms[2] = 1e3 * benchutil::time_per_call(
            [&] { disc->grad_from_modal_planes(modal, dx, dy, planes, k); }, min_seconds);
    }
    return r;
}

perf::Case to_case(const CaseResult& r) {
    perf::Case c;
    c.values["order"] = static_cast<double>(r.order);
    c.values["elements"] = static_cast<double>(r.elements);
    c.values["planes"] = static_cast<double>(r.planes);
    static const char* kKernels[3] = {"to_quad", "weak_inner", "grad"};
    for (int k = 0; k < 3; ++k) {
        c.values[std::string("per_element_ms.") + kKernels[k]] = r.per_elem_ms[k];
        c.values[std::string("batched_ms.") + kKernels[k]] = r.batched_ms[k];
        c.values[std::string("sumfact_ms.") + kKernels[k]] = r.sumfact_ms[k];
    }
    c.values["speedup"] = r.speedup();
    c.values["sumfact_speedup"] = r.sumfact_speedup();
    return c;
}

/// Smallest order from which the sum-factorised totals stay at or below the
/// dense batched totals for every measured order above it (totals summed
/// over the mesh-size/plane cases of each order).  -1 when sumfact never
/// takes the lead.  "Stays ahead" rather than "first win" so a noisy win at
/// low order does not masquerade as the asymptotic crossover.
double crossover_order(const std::vector<CaseResult>& results) {
    std::map<std::size_t, double> dense, sumfact;
    for (const CaseResult& r : results) {
        dense[r.order] += r.batched_total();
        sumfact[r.order] += r.sumfact_total();
    }
    double crossover = -1.0;
    for (const auto& [order, d] : dense) {
        if (sumfact[order] <= d) {
            if (crossover < 0.0) crossover = static_cast<double>(order);
        } else {
            crossover = -1.0;
        }
    }
    return crossover;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("bench_hotpath", argc, argv);
    const bool smoke = cli.request.smoke;
    // Timing window per measurement; the CI perf gate raises it above the
    // smoke default so microsecond kernels average out scheduler noise.
    const double min_seconds =
        cli.min_seconds > 0.0 ? cli.min_seconds : (smoke ? 0.002 : 0.05);
    // Orders 4-12: the dense batch wins at low order (one big dgemm, no
    // staging overhead), sum factorisation wins once O(P^3) beats O(P^4).
    const std::vector<std::size_t> orders = smoke
                                                ? std::vector<std::size_t>{4, 8, 12}
                                                : std::vector<std::size_t>{4, 6, 8, 10, 12};
    const std::vector<std::size_t> sides = smoke ? std::vector<std::size_t>{8}
                                                 : std::vector<std::size_t>{8, 16};
    const std::vector<std::size_t> planes = smoke ? std::vector<std::size_t>{1, 4}
                                                  : std::vector<std::size_t>{1, 16};

    std::printf("Elemental engine hot path (per-element dgemv vs dense batch vs sumfact)\n");
    std::printf("threads = %u\n\n", parallel::num_threads());
    benchutil::Table table({"order", "elems", "planes", "perElem ms", "dense ms",
                            "sumfact ms", "sf speedup"});
    table.print_header();

    std::vector<CaseResult> results;
    for (std::size_t order : orders) {
        for (std::size_t side : sides) {
            for (std::size_t np : planes) {
                const CaseResult r = run_case(order, side, np, min_seconds);
                results.push_back(r);
                table.print_row({std::to_string(r.order), std::to_string(r.elements),
                                 std::to_string(r.planes),
                                 benchutil::fmt(r.per_elem_total(), "%.3f"),
                                 benchutil::fmt(r.batched_total(), "%.3f"),
                                 benchutil::fmt(r.sumfact_total(), "%.3f"),
                                 benchutil::fmt(r.sumfact_speedup(), "%.2f")});
            }
        }
    }
    const double crossover = crossover_order(results);
    if (crossover >= 0.0)
        std::printf("\nsum-factorisation crossover: order >= %.0f (sumfact ahead of the "
                    "dense batch from there on)\n",
                    crossover);
    else
        std::printf("\nsum-factorisation crossover: none within this sweep\n");

    perf::RunReport rep = perf::report("bench_hotpath");
    rep.backend = "dense+sumfact"; // both engines measured side by side
    rep.crossover_order = crossover;
    rep.meta["threads"] = std::to_string(parallel::num_threads());
    for (const CaseResult& r : results) rep.cases.push_back(to_case(r));
    cli.finish(std::move(rep), "BENCH_hotpath.json");
    return 0;
}
