#!/usr/bin/env python3
"""Perf-regression gate for bench_hotpath.

Compares a freshly measured BENCH_hotpath.json against the committed baseline
(bench/BENCH_hotpath_baseline.json) and fails when any kernel of any case got
more than --threshold slower.

Both files are RunReports (see bench/run_report_schema.json): the sweep lives
in the top-level "cases" array as flat objects whose kernel timings use
dotted keys ("batched_ms.to_quad", "per_element_ms.grad", ...).

CI machines are not the baseline machine, so raw milliseconds are not
comparable across runs.  The gate therefore self-normalises: for every
(order, elements, planes) case and kernel it forms

    batched_ms_current / batched_ms_baseline

and divides out the *median* of those ratios across the whole sweep.  A
uniformly faster or slower host moves every ratio together and cancels in the
median; a regression in one code path (the way perf bugs actually land)
sticks out against it.  Any kernel more than --threshold above the median is
a failure.

Single smoke runs are noisy at microsecond kernel sizes, so --current may be
given several times: the gate takes the elementwise minimum over the runs
(minima are far more stable than means under scheduler noise).  The committed
baseline should be produced the same way.

Usage:
  compare_bench.py --baseline bench/BENCH_hotpath_baseline.json \
                   --current run1.json --current run2.json [--threshold 0.15]
  compare_bench.py --update --baseline ... --current ...   # re-baseline
  compare_bench.py --self-test --baseline ...              # gate sanity check

Re-baselining (after an intentional perf change): run the Release
bench_hotpath locally or grab the BENCH_hotpath.json artifact from a green
main build, then
  python3 bench/compare_bench.py --update \
      --baseline bench/BENCH_hotpath_baseline.json --current BENCH_hotpath.json
and commit the updated baseline together with the change that moved it.
"""

from __future__ import annotations

import argparse
import copy
import json
import shutil
import statistics
import sys

KERNELS = ("to_quad", "weak_inner", "grad")


def case_key(case: dict) -> tuple:
    return (int(case["order"]), int(case["elements"]), int(case["planes"]))


def elementwise_min(runs: list[dict]) -> dict:
    """Merge several runs of the same sweep into one with per-entry minima."""
    merged = copy.deepcopy(runs[0])
    cases = {case_key(c): c for c in merged["cases"]}
    for run in runs[1:]:
        run_keys = {case_key(c) for c in run["cases"]}
        if run_keys != set(cases):
            raise SystemExit("cannot merge runs: case sets differ "
                             f"({sorted(set(cases) ^ run_keys)})")
        for c in run["cases"]:
            dst = cases[case_key(c)]
            for group in ("per_element_ms", "batched_ms"):
                for k in KERNELS:
                    key = f"{group}.{k}"
                    dst[key] = min(dst[key], c[key])
    return merged


def compare(baseline: dict, current: dict, threshold: float) -> list[str]:
    base_cases = {case_key(c): c for c in baseline["cases"]}
    cur_cases = {case_key(c): c for c in current["cases"]}
    failures = []
    missing = sorted(set(base_cases) - set(cur_cases))
    for key in missing:
        failures.append(f"case {key} present in baseline but missing from current run")

    shared = sorted(set(base_cases) & set(cur_cases))
    entries = []  # (key, kernel, current/baseline ratio)
    for key in shared:
        for k in KERNELS:
            base_ms = base_cases[key][f"batched_ms.{k}"]
            if base_ms <= 0.0:
                raise SystemExit(f"corrupt baseline: batched_ms.{k} = {base_ms}")
            entries.append((key, k, cur_cases[key][f"batched_ms.{k}"] / base_ms))
    if not entries:
        return failures

    # Host-speed normalisation: the median ratio is "how fast this machine is
    # relative to the baseline machine"; per-kernel regressions stand out
    # against it.
    scale = statistics.median(r for _, _, r in entries)
    for key, k, r in entries:
        slowdown = r / scale - 1.0
        if slowdown > threshold:
            failures.append(
                f"case (order={key[0]}, elems={key[1]}, planes={key[2]}) kernel {k}: "
                f"{slowdown:+.0%} vs the run median (limit {threshold:+.0%}; "
                f"raw ratio {r:.3f}, median {scale:.3f})")
    return failures


def self_test(baseline_path: str, threshold: float) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    # Identical data must pass.
    if compare(baseline, baseline, threshold):
        print("self-test FAILED: baseline does not compare clean against itself")
        return 1
    # A 1.3x slowdown injected into one batched kernel must be caught.
    perturbed = copy.deepcopy(baseline)
    perturbed["cases"][0]["batched_ms.weak_inner"] *= 1.30
    failures = compare(baseline, perturbed, threshold)
    if not failures:
        print("self-test FAILED: injected 30% slowdown was not flagged")
        return 1
    # A dropped case must be caught too.
    truncated = copy.deepcopy(baseline)
    truncated["cases"] = truncated["cases"][1:]
    if not compare(baseline, truncated, threshold):
        print("self-test FAILED: missing case was not flagged")
        return 1
    print(f"self-test OK: clean pass, injected regression and missing case both "
          f"flagged at threshold {threshold:.0%}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--current", action="append",
                    help="freshly measured JSON (repeat for min-of-N)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative slowdown per kernel (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="copy --current over --baseline instead of comparing")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate flags an injected regression")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.baseline, args.threshold)
    if not args.current:
        ap.error("--current is required unless --self-test")
    runs = []
    for path in args.current:
        with open(path) as f:
            runs.append(json.load(f))
    current = elementwise_min(runs)

    if args.update:
        if len(runs) == 1:
            shutil.copyfile(args.current[0], args.baseline)
        else:
            with open(args.baseline, "w") as f:
                json.dump(current, f, indent=2)
                f.write("\n")
        print(f"baseline updated from {len(runs)} run(s)")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    failures = compare(baseline, current, args.threshold)
    if failures:
        print(f"perf regression gate FAILED ({len(failures)} finding(s)):")
        for msg in failures:
            print(f"  - {msg}")
        print("\nIf the slowdown is intentional, re-baseline (see --help).")
        return 1
    print(f"perf gate OK: {len(current['cases'])} case(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
