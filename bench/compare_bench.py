#!/usr/bin/env python3
"""Perf-regression gate for bench_hotpath.

Compares a freshly measured BENCH_hotpath.json against one or more committed
baselines and fails when any gated kernel of any case got more than
--threshold slower.  Two baselines are committed:

  bench/BENCH_hotpath_baseline.json  — the dense batched engine (gate its
                                       "batched_ms" metric group)
  bench/BENCH_sumfact_baseline.json  — the sum-factorised engine (gate its
                                       "sumfact_ms" metric group)

Both files are RunReports (see bench/run_report_schema.json): the sweep lives
in the top-level "cases" array as flat objects whose kernel timings use
dotted keys ("batched_ms.to_quad", "sumfact_ms.grad", ...).  --baseline and
--metric-group repeat in lockstep: the i-th baseline is gated on the i-th
group (a single --metric-group applies to every baseline; the default is
"batched_ms").

CI machines are not the baseline machine, so raw milliseconds are not
comparable across runs.  The gate therefore self-normalises: for every
(order, elements, planes) case and kernel it forms

    current_ms / baseline_ms

and divides out the *median* of those ratios across the whole sweep.  A
uniformly faster or slower host moves every ratio together and cancels in the
median; a regression in one code path (the way perf bugs actually land)
sticks out against it.  Any kernel more than --threshold above the median is
a failure.

Single smoke runs are noisy at microsecond kernel sizes, so --current may be
given several times: the gate takes the elementwise minimum over the runs
(minima are far more stable than means under scheduler noise).  The committed
baselines should be produced the same way.

Usage:
  compare_bench.py --baseline bench/BENCH_hotpath_baseline.json \
                   --baseline bench/BENCH_sumfact_baseline.json \
                   --metric-group batched_ms --metric-group sumfact_ms \
                   --current run1.json --current run2.json [--threshold 0.15]
  compare_bench.py --update --baseline ... --current ...   # re-baseline
  compare_bench.py --self-test --baseline ... [--baseline ...]  # gate check

Re-baselining (after an intentional perf change): run the Release
bench_hotpath locally or grab the BENCH_hotpath.json artifact from a green
main build, then
  python3 bench/compare_bench.py --update \
      --baseline bench/BENCH_hotpath_baseline.json --current BENCH_hotpath.json
and commit the updated baseline together with the change that moved it.
"""

from __future__ import annotations

import argparse
import copy
import json
import shutil
import statistics
import sys

KERNELS = ("to_quad", "weak_inner", "grad")
# Every timing group a sweep may carry; elementwise_min folds all of them.
ALL_GROUPS = ("per_element_ms", "batched_ms", "sumfact_ms")

# RunReport schema versions this gate understands.  v2 added the request
# echo and cache blocks; the gated "cases" layout is unchanged, so both
# versions compare against each other during a re-baseline transition.
SUPPORTED_SCHEMAS = (1, 2)


def load_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    version = doc.get("schema_version")
    if version not in SUPPORTED_SCHEMAS:
        raise SystemExit(f"{path}: RunReport schema_version {version!r} not in "
                         f"{SUPPORTED_SCHEMAS} — regenerate the file or update "
                         "compare_bench.py")
    return doc


def case_key(case: dict) -> tuple:
    return (int(case["order"]), int(case["elements"]), int(case["planes"]))


def elementwise_min(runs: list[dict]) -> dict:
    """Merge several runs of the same sweep into one with per-entry minima."""
    merged = copy.deepcopy(runs[0])
    cases = {case_key(c): c for c in merged["cases"]}
    for run in runs[1:]:
        run_keys = {case_key(c) for c in run["cases"]}
        if run_keys != set(cases):
            raise SystemExit("cannot merge runs: case sets differ "
                             f"({sorted(set(cases) ^ run_keys)})")
        for c in run["cases"]:
            dst = cases[case_key(c)]
            for group in ALL_GROUPS:
                for k in KERNELS:
                    key = f"{group}.{k}"
                    if key in dst and key in c:
                        dst[key] = min(dst[key], c[key])
    return merged


def compare(baseline: dict, current: dict, threshold: float,
            group: str = "batched_ms") -> list[str]:
    base_cases = {case_key(c): c for c in baseline["cases"]}
    cur_cases = {case_key(c): c for c in current["cases"]}
    failures = []
    missing = sorted(set(base_cases) - set(cur_cases))
    for key in missing:
        failures.append(f"case {key} present in baseline but missing from current run")

    shared = sorted(set(base_cases) & set(cur_cases))
    entries = []  # (key, kernel, current/baseline ratio)
    for key in shared:
        for k in KERNELS:
            metric = f"{group}.{k}"
            if metric not in base_cases[key]:
                raise SystemExit(f"baseline case {key} has no \"{metric}\" — wrong "
                                 f"--metric-group for this baseline?")
            base_ms = base_cases[key][metric]
            if base_ms <= 0.0:
                raise SystemExit(f"corrupt baseline: {metric} = {base_ms}")
            if metric not in cur_cases[key]:
                failures.append(f"case {key}: current run has no \"{metric}\"")
                continue
            entries.append((key, k, cur_cases[key][metric] / base_ms))
    if not entries:
        return failures

    # Host-speed normalisation: the median ratio is "how fast this machine is
    # relative to the baseline machine"; per-kernel regressions stand out
    # against it.
    scale = statistics.median(r for _, _, r in entries)
    for key, k, r in entries:
        slowdown = r / scale - 1.0
        if slowdown > threshold:
            failures.append(
                f"case (order={key[0]}, elems={key[1]}, planes={key[2]}) kernel "
                f"{group}.{k}: {slowdown:+.0%} vs the run median (limit "
                f"{threshold:+.0%}; raw ratio {r:.3f}, median {scale:.3f})")
    return failures


def pair_groups(baselines: list[str], groups: list[str]) -> list[str]:
    """The metric group gated for each baseline (see module docstring)."""
    if not groups:
        return ["batched_ms"] * len(baselines)
    if len(groups) == 1:
        return groups * len(baselines)
    if len(groups) != len(baselines):
        raise SystemExit(f"{len(baselines)} --baseline but {len(groups)} "
                         "--metric-group: give one per baseline (or one total)")
    return groups


def self_test(baseline_paths: list[str], groups: list[str], threshold: float) -> int:
    groups = pair_groups(baseline_paths, groups)
    for path, group in zip(baseline_paths, groups):
        baseline = load_report(path)
        label = f"{path} [{group}]"
        # Identical data must pass.
        if compare(baseline, baseline, threshold, group):
            print(f"self-test FAILED: {label} does not compare clean against itself")
            return 1
        # A 1.3x slowdown injected into one gated kernel must be caught.
        perturbed = copy.deepcopy(baseline)
        perturbed["cases"][0][f"{group}.weak_inner"] *= 1.30
        if not compare(baseline, perturbed, threshold, group):
            print(f"self-test FAILED: injected 30% slowdown in {label} not flagged")
            return 1
        # A dropped case must be caught too.
        truncated = copy.deepcopy(baseline)
        truncated["cases"] = truncated["cases"][1:]
        if not compare(baseline, truncated, threshold, group):
            print(f"self-test FAILED: missing case in {label} was not flagged")
            return 1
        # A current run without the gated metric group must be caught (guards
        # against a sweep that silently stops measuring one engine).
        stripped = copy.deepcopy(baseline)
        for c in stripped["cases"]:
            for k in KERNELS:
                c.pop(f"{group}.{k}", None)
        if not compare(baseline, stripped, threshold, group):
            print(f"self-test FAILED: missing metric group in {label} not flagged")
            return 1
        print(f"self-test: {label} — clean pass, injected regression, missing "
              "case and missing metric group all flagged")
    print(f"self-test OK over {len(baseline_paths)} baseline(s) at threshold "
          f"{threshold:.0%}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", action="append", required=True,
                    help="committed baseline JSON (repeat to gate several)")
    ap.add_argument("--metric-group", action="append", default=[],
                    choices=["per_element_ms", "batched_ms", "sumfact_ms"],
                    help="dotted-key prefix gated for the matching --baseline "
                         "(default batched_ms)")
    ap.add_argument("--current", action="append",
                    help="freshly measured JSON (repeat for min-of-N)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative slowdown per kernel (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="copy --current over --baseline instead of comparing")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate flags an injected regression")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.baseline, args.metric_group, args.threshold)
    if not args.current:
        ap.error("--current is required unless --self-test")
    runs = [load_report(path) for path in args.current]
    current = elementwise_min(runs)

    if args.update:
        if len(args.baseline) != 1:
            ap.error("--update takes exactly one --baseline")
        if len(runs) == 1:
            shutil.copyfile(args.current[0], args.baseline[0])
        else:
            with open(args.baseline[0], "w") as f:
                json.dump(current, f, indent=2)
                f.write("\n")
        print(f"baseline updated from {len(runs)} run(s)")
        return 0

    groups = pair_groups(args.baseline, args.metric_group)
    failed = 0
    for path, group in zip(args.baseline, groups):
        baseline = load_report(path)
        failures = compare(baseline, current, args.threshold, group)
        if failures:
            failed += 1
            print(f"perf regression gate FAILED for {path} [{group}] "
                  f"({len(failures)} finding(s)):")
            for msg in failures:
                print(f"  - {msg}")
        else:
            print(f"perf gate OK for {path} [{group}]: "
                  f"{len(baseline['cases'])} baseline case(s) within "
                  f"{args.threshold:.0%}")
    if failed:
        print("\nIf the slowdown is intentional, re-baseline (see --help).")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
