/// Figures 13-14: NekTar-F stage percentages (CPU and wall-clock) within a
/// time step on 4 processors, for NCSA, IBM SP2 "Silver", RoadRunner
/// ethernet and RoadRunner myrinet.  Shape to reproduce: "the main
/// computational cost occurs at the non-linear step 2 ... MPI_Alltoall ...
/// creates a bottleneck in communications, which is apparent in the PC
/// clusters, where step 2 takes as much as 60% of the time" (ethernet), and
/// nearly identical CPU/wall pies on the polling networks.
#include <cmath>
#include <cstdio>
#include <memory>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_fourier.hpp"

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("fig13_14_f_stages", argc, argv);
    const int nprocs = cli.request.ranks > 0 ? cli.request.ranks : 4;
    mesh::BluffBodyParams p;
    p.n_upstream = 4;
    p.n_wake = 6;
    p.n_body = 2;
    p.n_side = 3;
    const auto base_mesh = std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p));
    netsim::NetworkModel probe;
    probe.name = "probe";
    probe.latency_us = 10.0;
    probe.bandwidth_mbps = 100.0;

    perf::StageBreakdown bd;
    simmpi::CommLog log;
    std::size_t field_bytes = 0, solver_bytes = 0;
    simmpi::World world(nprocs, probe);
    const int bootstrap = 1, steady = 2;
    const auto reports = world.run([&](simmpi::Comm& c) {
        const auto disc = std::make_shared<nektar::Discretization>(base_mesh, 4);
        nektar::FourierNsOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.01;
        opts.num_modes = static_cast<std::size_t>(nprocs);
        opts.trace = cli.trace;
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        nektar::FourierNS ns(disc, opts, &c);
        ns.set_initial([](double, double, double z) { return 1.0 + 0.05 * std::sin(z); },
                       [](double, double, double) { return 0.0; },
                       [](double, double, double z) { return 0.05 * std::cos(z); });
        for (int s = 0; s < bootstrap; ++s) ns.step();
        ns.breakdown() = {};
        for (int s = 0; s < steady; ++s) ns.step();
        if (c.rank() == 0) {
            bd = ns.breakdown();
            field_bytes = 2 * disc->quad_size() * sizeof(double);
            solver_bytes = disc->dofmap().num_global() * (disc->dofmap().bandwidth() + 1) *
                           sizeof(double);
        }
    });
    log = reports[0].log;
    // The solver defaults to the pipelined transpose: fold the hidden comm
    // seconds (priced on the probe network) into the stage breakdown.
    for (const auto& [stage, hidden] : reports[0].overlap_log)
        bd.add_comm_overlap(static_cast<std::size_t>(stage), hidden);
    const double comm_groups = static_cast<double>(1 + bootstrap + steady);
    const auto shapes = app_model::solver_shapes(field_bytes, solver_bytes);

    const std::vector<app_model::Platform> plats = {
        {"NCSA", "NCSA", "NCSA"},
        {"IBM SP2 Silver", "SP2-Silver", "SP2-Silver internode"},
        {"RoadRunner eth.", "RoadRunner", "RoadRunner eth."},
        {"RoadRunner myr.", "RoadRunner", "RoadRunner myr."},
    };
    std::printf("Figures 13-14: NekTar-F stage percentages, %d-processor run.\n", nprocs);
    std::printf("Paper stage-2 shares: NCSA 41%%, SP2-Silver 53%%, RR-eth 69/71%%, "
                "RR-myr 55%%.\n\n");
    // Per-stage hidden fraction on the probe network: how much of each
    // stage's overlapped comm the schedule actually covered with compute.
    const auto probe_splits = app_model::comm_stage_splits(log, probe, nprocs);
    std::array<double, perf::kNumStages + 1> rho{};
    for (std::size_t s = 1; s <= perf::kNumStages; ++s)
        rho[s] = app_model::overlap_efficiency(bd.overlap_seconds[s],
                                               probe_splits[s].overlapped);

    perf::RunReport rep = perf::report("fig13_14_f_stages", &bd);
    rep.meta["nprocs"] = std::to_string(nprocs);
    for (const auto& pl : plats) {
        if (!cli.machine_selected(pl.machine) || !cli.net_selected(pl.network)) continue;
        const auto& m = machine::by_name(pl.machine);
        const auto& net = netsim::by_name(pl.network);
        const auto comp = app_model::compute_stage_seconds(bd, m, shapes);
        const auto splits = app_model::comm_stage_splits(log, net, nprocs);
        double cpu_total = 0.0, wall_total = 0.0, recov_total = 0.0;
        std::array<double, perf::kNumStages + 1> cpu{}, wall{}, ovl{}, recov{};
        for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
            const double scale = static_cast<double>(bd.steps) / comm_groups;
            const double per_step_comm = splits[s].total() * scale;
            ovl[s] = splits[s].overlapped * scale;
            recov[s] = app_model::recovered_seconds(rho[s], ovl[s], net.cpu_poll_fraction);
            cpu[s] = comp[s] + per_step_comm * net.cpu_poll_fraction;
            wall[s] = comp[s] + per_step_comm - recov[s];
            cpu_total += cpu[s];
            wall_total += wall[s];
            recov_total += recov[s];
        }
        std::printf("%s\n", pl.label.c_str());
        benchutil::Table table({"stage", "CPU %", "wall %", "ovl comm %", "recov ms"}, 14);
        table.print_header();
        for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
            table.print_row({std::to_string(s) + " " + perf::stage_short_name(s),
                             benchutil::fmt(100.0 * cpu[s] / cpu_total, "%.0f"),
                             benchutil::fmt(100.0 * wall[s] / wall_total, "%.0f"),
                             benchutil::fmt(100.0 * ovl[s] / wall_total, "%.0f"),
                             benchutil::fmt(1e3 * recov[s] / bd.steps, "%.1f")});
            perf::Case kase;
            kase.labels["platform"] = pl.label;
            kase.labels["stage_name"] = perf::stage_short_name(s);
            kase.values["stage"] = static_cast<double>(s);
            kase.values["cpu_percent"] = 100.0 * cpu[s] / cpu_total;
            kase.values["wall_percent"] = 100.0 * wall[s] / wall_total;
            kase.values["overlapped_comm_percent"] = 100.0 * ovl[s] / wall_total;
            kase.values["recovered_ms_per_step"] = 1e3 * recov[s] / bd.steps;
            rep.cases.push_back(std::move(kase));
        }
        std::printf("wall time recovered by overlap: %.1f ms/step\n\n",
                    1e3 * recov_total / bd.steps);
    }
    cli.finish(std::move(rep));
    return 0;
}
