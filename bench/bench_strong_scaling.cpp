/// Strong scaling beyond the paper: Table 2 stops at P=16 because 1999's
/// clusters did; this bench extends the same NekTar-F transpose workload to
/// P = 64..4096 on the hypothetical large-cluster fabrics of
/// netsim::scaling_roster() and reproduces the 1-D slab vs 2-D pencil
/// crossover from the post-paper literature: the slab's single P-wide
/// alltoall pays a latency term ~P while the pencil's two staged sqrt(P)-wide
/// exchanges pay ~2 sqrt(P), so past a latency-dependent rank count the
/// pencil wins even though it ships the data twice.
///
/// Strong scaling: the global problem (NQ quadrature points x TP Fourier
/// planes) is fixed and P grows, so every rank count actually runs under
/// Engine::Tasks (the fiber scheduler) — subcommunicator events pin their
/// group size, so a pencil log cannot be re-priced across P the way world
/// logs can.  Each run is then re-priced on every machine x network model.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "machine/accelerator_model.hpp"
#include "machine/machine_model.hpp"
#include "nektar/fourier_transpose.hpp"
#include "nektar/pencil_transpose.hpp"

namespace {

netsim::NetworkModel probe_net() {
    netsim::NetworkModel probe; // any model; timings are re-priced later
    probe.name = "probe";
    probe.latency_us = 10.0;
    probe.bandwidth_mbps = 100.0;
    return probe;
}

/// One strong-scaling case: the comm log of rank 0 plus the digest of every
/// rank's line-layout data (for the slab/pencil bit-identity check).
struct RunData {
    simmpi::CommLog log;        ///< rank 0, cumulative over `steps`
    int steps = 0;
    std::size_t rows = 0, cols = 0;
    std::uint64_t digest = 0;   ///< FNV over all ranks' lines + planes bits
};

/// FNV-1a over a span of doubles' bit patterns.
std::uint64_t fnv(std::uint64_t h, const std::vector<double>& v) {
    for (const double d : v) {
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/// Runs `steps` forward/backward transpose round trips of the fixed
/// NQ x TP field at rank count `nprocs` under the fiber scheduler.
RunData run_transpose(int nprocs, bool pencil, std::size_t nq, std::size_t tp, int steps) {
    RunData data;
    data.steps = steps;
    const std::size_t nplanes = tp / static_cast<std::size_t>(nprocs);
    simmpi::World world(nprocs, probe_net(), simmpi::Engine::Tasks);
    world.set_max_tasks(nprocs);
    std::vector<std::uint64_t> digests(static_cast<std::size_t>(nprocs), 0);
    const auto reports = world.run([&](simmpi::Comm& c) {
        std::unique_ptr<nektar::Transpose> tr;
        if (pencil)
            tr = std::make_unique<nektar::PencilTranspose>(&c, nq, nplanes);
        else
            tr = std::make_unique<nektar::FourierTranspose>(&c, nq, nplanes);
        if (c.rank() == 0) {
            if (const auto* p = dynamic_cast<const nektar::PencilTranspose*>(tr.get())) {
                data.rows = p->grid_rows();
                data.cols = p->grid_cols();
            } else {
                data.rows = 1;
                data.cols = static_cast<std::size_t>(nprocs);
            }
        }
        // Deterministic field: a function of the *global* (plane, point)
        // index, so slab and pencil runs start from identical values.
        std::vector<double> planes(tr->planes_buffer_size());
        std::vector<double> lines(tr->lines_buffer_size());
        const std::size_t base = static_cast<std::size_t>(c.rank()) * nplanes;
        for (std::size_t lp = 0; lp < nplanes; ++lp)
            for (std::size_t i = 0; i < nq; ++i)
                planes[lp * nq + i] =
                    std::sin(0.001 * static_cast<double>((base + lp) * nq + i));
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (int s = 0; s < steps; ++s) {
            tr->to_lines(&c, planes, lines);
            h = fnv(h, lines);
            tr->to_planes(&c, lines, planes);
        }
        h = fnv(h, planes);
        digests[static_cast<std::size_t>(c.rank())] = h;
    });
    data.log = reports[0].log;
    data.digest = 0xcbf29ce484222325ull;
    for (const std::uint64_t h : digests) {
        data.digest ^= h;
        data.digest *= 1099511628211ull;
    }
    return data;
}

/// Per-step z-line FFT charge for the nonlinear term: 9 real transforms of
/// length TP per point line (the paper's 3 velocity components each way plus
/// the products), at ~5 n log2 n flops per transform -> (45 log2 TP + 6) TP
/// flops per line.  Identical for slab and pencil — the decomposition only
/// moves the comm cost.
double compute_seconds_per_step(const machine::MachineModel& m, std::size_t nq,
                                std::size_t tp, int nprocs) {
    const std::size_t chunk =
        (nq + static_cast<std::size_t>(nprocs) - 1) / static_cast<std::size_t>(nprocs);
    const double lines = static_cast<double>(std::min(chunk, nq));
    const double n = static_cast<double>(tp);
    machine::KernelShape k;
    k.flops = lines * (45.0 * std::log2(n) + 6.0) * n;
    k.bytes = lines * n * sizeof(double) * 4.0;
    k.working_set = static_cast<std::size_t>(lines) * tp * sizeof(double);
    k.compute_efficiency = 0.5; // FFT butterflies, not dgemm
    return machine::predict_seconds(m, k);
}

struct Platform {
    std::string label;
    std::string machine;
    std::string network;
};

const std::vector<Platform>& platforms() {
    static const std::vector<Platform> p = {
        {"RR/FastEther-sw", "RoadRunner", "FastEther switched"},
        {"RR/Myrinet2000", "RoadRunner", "Myrinet2000 switched"},
        {"NCSA/FastEther-sw", "NCSA", "FastEther switched"},
        {"NCSA/Myrinet2000", "NCSA", "Myrinet2000 switched"},
    };
    return p;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("bench_strong_scaling", argc, argv);
    // Smoke keeps the same shape (TP divisible by every P, NQ < TP) at a
    // fraction of the footprint; CI runs it on every merge.
    const std::size_t nq = cli.request.smoke ? 256 : 2048;
    const std::size_t tp = cli.request.smoke ? 512 : 4096;
    const int steps = cli.request.smoke ? 1 : 2;
    const std::vector<int> default_sweep =
        cli.request.smoke ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024, 4096};

    std::printf("Strong scaling beyond Table 2: fixed %zu points x %zu planes, P = 64..4096.\n",
                nq, tp);
    std::printf("slab = one P-wide alltoall (the paper's 4.2.1); pencil = two staged\n"
                "sqrt(P)-wide alltoalls over row/column subcommunicators.\n\n");

    std::vector<Platform> selected;
    for (const auto& pl : platforms())
        if (cli.machine_selected(pl.machine) && cli.net_selected(pl.network))
            selected.push_back(pl);
    if (selected.empty()) {
        std::fprintf(stderr, "bench_strong_scaling: no platform matches the given "
                             "--machine/--net filters\n");
        return 2;
    }

    // Bit-identity gate: at P=16 (Table 2's ceiling, where both paths apply)
    // the slab and pencil transposes must move exactly the same bits.
    {
        const RunData slab = run_transpose(16, /*pencil=*/false, nq, tp, steps);
        const RunData pen = run_transpose(16, /*pencil=*/true, nq, tp, steps);
        if (slab.digest != pen.digest) {
            std::fprintf(stderr,
                         "bench_strong_scaling: slab/pencil digests differ at P=16 "
                         "(%016llx vs %016llx)\n",
                         static_cast<unsigned long long>(slab.digest),
                         static_cast<unsigned long long>(pen.digest));
            return 1;
        }
        std::printf("P=16 bit-identity: slab and pencil line/plane digests agree "
                    "(%016llx)\n\n",
                    static_cast<unsigned long long>(slab.digest));
    }

    std::vector<std::string> headers = {"P", "grid"};
    for (const auto& pl : selected) headers.push_back(pl.label);
    benchutil::Table table(headers, 19);
    table.print_header();

    perf::RunReport rep = perf::report("bench_strong_scaling");
    bool crossover_ok = true;
    for (const int nprocs : cli.rank_sweep(default_sweep)) {
        const RunData slab = run_transpose(nprocs, /*pencil=*/false, nq, tp, steps);
        const RunData pen = run_transpose(nprocs, /*pencil=*/true, nq, tp, steps);
        std::vector<std::string> row = {std::to_string(nprocs),
                                        std::to_string(pen.rows) + "x" +
                                            std::to_string(pen.cols)};
        for (const auto& pl : selected) {
            const auto& m = machine::by_name(pl.machine);
            const auto& net = netsim::by_name(pl.network);
            const double cpu = compute_seconds_per_step(m, nq, tp, nprocs);
            const double comm_slab =
                simmpi::price_log(slab.log, net, nprocs) / slab.steps;
            const double comm_pen = simmpi::price_log(pen.log, net, nprocs) / pen.steps;
            const double wall_slab = cpu + comm_slab;
            const double wall_pen = cpu + comm_pen;
            row.push_back(benchutil::fmt(wall_slab, "%.3f") + "/" +
                          benchutil::fmt(wall_pen, "%.3f"));
            for (const bool pencil : {false, true}) {
                perf::Case kase;
                kase.labels["platform"] = pl.label;
                kase.labels["transpose"] = pencil ? "pencil" : "slab";
                kase.values["nprocs"] = static_cast<double>(nprocs);
                kase.values["grid_rows"] = static_cast<double>(pencil ? pen.rows : 1);
                kase.values["grid_cols"] =
                    static_cast<double>(pencil ? pen.cols : static_cast<std::size_t>(nprocs));
                kase.values["cpu_seconds_per_step"] = cpu;
                kase.values["comm_seconds_per_step"] = pencil ? comm_pen : comm_slab;
                kase.values["wall_seconds_per_step"] = pencil ? wall_pen : wall_slab;
                rep.cases.push_back(std::move(kase));
            }
            // The crossover this bench exists to show: on Fast Ethernet the
            // pencil must win from P=256 up.
            if (nprocs >= 256 && pl.network == "FastEther switched" &&
                wall_pen >= wall_slab) {
                std::fprintf(stderr,
                             "bench_strong_scaling: no slab->pencil crossover at "
                             "P=%d on %s (slab %.4f s/step, pencil %.4f s/step)\n",
                             nprocs, pl.label.c_str(), wall_slab, wall_pen);
                crossover_ok = false;
            }
        }
        table.print_row(row);
    }
    std::printf("\n(cells are slab/pencil predicted wall seconds per step; the pencil\n"
                "overtakes the slab where the P-wide alltoall's latency term dominates)\n");

    // GPU-era projection: the same per-rank z-line FFT work priced on
    // accelerator rooflines (machine/accelerator_model.hpp).  A host-staged
    // transpose ships the rank's whole slab (nq*tp/P doubles) across the
    // host link twice per round trip, so at scale the PCIe-class link — not
    // the device — bounds the step, the 1999 Ethernet story replayed.
    std::printf("\nGPU-era projection (per-rank compute s/step on the device; 'staged'\n"
                "adds two host-link crossings of the rank's slab per round trip)\n\n");
    benchutil::Table at({"P", "accelerator", "device", "staged"}, 14);
    at.print_header();
    for (const int nprocs : cli.rank_sweep(default_sweep)) {
        const std::size_t slab_bytes =
            nq * tp / static_cast<std::size_t>(nprocs) * sizeof(double);
        for (const auto& acc : machine::accelerator_roster()) {
            const double dev = compute_seconds_per_step(acc.device, nq, tp, nprocs);
            const double staged = dev + 2.0 * acc.transfer_seconds(slab_bytes);
            at.print_row({std::to_string(nprocs), acc.name, benchutil::fmt(dev, "%.3g"),
                          benchutil::fmt(staged, "%.3g")});
            perf::Case kase;
            kase.labels["accelerator"] = acc.name;
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["device_seconds_per_step"] = dev;
            kase.values["staged_seconds_per_step"] = staged;
            rep.cases.push_back(std::move(kase));
        }
    }
    cli.finish(std::move(rep));
    return crossover_ok ? 0 : 1;
}
