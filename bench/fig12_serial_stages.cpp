/// Figure 12: percentage of each of the 7 stages within a serial bluff-body
/// time step, for the SGI Onyx2 and the Pentium II.  The paper finds "matrix
/// inversions account for 60% of the total CPU time, with the setup of the
/// right hand side ... another 20%" and <1-2% difference between machines.
#include <cstdio>
#include <memory>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_serial.hpp"

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("fig12_serial_stages", argc, argv);
    mesh::BluffBodyParams p;
    p.n_upstream = 6;
    p.n_wake = 10;
    p.n_body = 3;
    p.n_side = 4;
    const auto disc = std::make_shared<nektar::Discretization>(
        std::make_shared<mesh::Mesh>(mesh::bluff_body_mesh(p)), 6);
    nektar::SerialNsOptions opts;
    opts.dt = 2e-3;
    opts.viscosity = 0.01;
    opts.trace = cli.trace;
    opts.u_bc = [](double x, double y, double) {
        const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
        return body ? 0.0 : 1.0;
    };
    nektar::SerialNS2d ns(disc, opts);
    ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
    ns.step();
    ns.breakdown() = {};
    for (int s = 0; s < 3; ++s) ns.step();

    const std::size_t field_bytes = disc->quad_size() * sizeof(double);
    const std::size_t solver_bytes =
        disc->dofmap().num_global() * (disc->dofmap().bandwidth() + 1) * sizeof(double);
    const auto shapes = app_model::solver_shapes(field_bytes, solver_bytes);

    std::printf("Figure 12: CPU time percentage of each stage within a time step\n\n");
    perf::RunReport rep = perf::report("fig12_serial_stages", &ns.breakdown());
    // Paper's pie values for reference.
    const double paper_onyx[8] = {0, 4, 11, 3, 9, 30, 12, 31};
    const double paper_pii[8] = {0, 3, 10, 5, 8, 31, 11, 32};
    for (const char* machine : {"Onyx2", "Muses"}) {
        if (!cli.machine_selected(machine)) continue;
        const auto comp = app_model::compute_stage_seconds(ns.breakdown(),
                                                           machine::by_name(machine), shapes);
        double total = 0.0;
        for (std::size_t s = 1; s <= perf::kNumStages; ++s) total += comp[s];
        std::printf("%s (paper: %s)\n", machine,
                    std::string(machine) == "Onyx2" ? "SGI Onyx 2" : "Pentium PII, 450Mhz");
        benchutil::Table table({"stage", "description", "ours %", "paper %"}, 30);
        table.print_header();
        for (std::size_t s = 1; s <= perf::kNumStages; ++s) {
            const double* ref = std::string(machine) == "Onyx2" ? paper_onyx : paper_pii;
            table.print_row({std::to_string(s), perf::stage_name(s),
                             benchutil::fmt(100.0 * comp[s] / total, "%.0f"),
                             benchutil::fmt(ref[s], "%.0f")});
            perf::Case kase;
            kase.labels["machine"] = machine;
            kase.labels["stage_name"] = perf::stage_name(s);
            kase.values["stage"] = static_cast<double>(s);
            kase.values["cpu_percent"] = 100.0 * comp[s] / total;
            kase.values["paper_percent"] = ref[s];
            rep.cases.push_back(std::move(kase));
        }
        std::printf("\n");
    }
    cli.finish(std::move(rep));
    return 0;
}
