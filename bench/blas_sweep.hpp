#pragma once

#include <cstdio>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "blaslite/blas.hpp"
#include "machine/machine_model.hpp"

/// \file blas_sweep.hpp
/// Shared driver for the Figure 1-6 kernel benches.
///
/// Each figure plots one BLAS kernel against array size for two machine
/// groups (left: SP2-Thin2, SP2-Silver, Muses, AP3000, Onyx2; right: T3E,
/// SP2-P2SC, Muses — the paper's layout).  The per-machine series are the
/// analytic model of src/machine; an extra "host(meas.)" column reports the
/// same kernel actually executed by src/blaslite on this machine, tying the
/// models to real code.
namespace blas_sweep {

/// The machines of the left and right plots, in the paper's legend order.
inline const std::vector<std::string> kMachines = {"SP2-Thin2", "SP2-Silver", "Muses",
                                                   "AP3000",   "Onyx2",      "T3E",
                                                   "P2SC"};

struct Kernel {
    const char* figure;        ///< e.g. "Figure 1"
    const char* name;          ///< e.g. "dcopy"
    const char* unit;          ///< "MB/sec" or "Mflop/sec"
    bool size_is_matrix_dim;   ///< dgemv/dgemm sweep the matrix dimension
    machine::KernelShape (*shape)(std::size_t n);
    /// Runs the real kernel once at size n and returns (flops, bytes) moved.
    double (*host_rate)(std::size_t n); ///< measured rate in the figure's unit
};

inline double host_rate_dcopy(std::size_t n) {
    std::vector<double> x(n, 1.0), y(n);
    const double t = benchutil::time_per_call([&] { blaslite::dcopy(x, y); });
    return 2.0 * static_cast<double>(n) * sizeof(double) / t / 1e6;
}

inline double host_rate_daxpy(std::size_t n) {
    std::vector<double> x(n, 1.0), y(n, 0.5);
    const double t = benchutil::time_per_call([&] { blaslite::daxpy(1.0001, x, y); });
    return 2.0 * static_cast<double>(n) / t / 1e6;
}

inline double host_rate_ddot(std::size_t n) {
    std::vector<double> x(n, 1.0), y(n, 0.5);
    volatile double sink = 0.0;
    const double t = benchutil::time_per_call([&] { sink = blaslite::ddot(x, y); });
    (void)sink;
    return 2.0 * static_cast<double>(n) / t / 1e6;
}

inline double host_rate_dgemv(std::size_t n) {
    std::vector<double> a(n * n, 0.5), x(n, 1.0), y(n, 0.0);
    const double t = benchutil::time_per_call(
        [&] { blaslite::dgemv(1.0, a.data(), n, n, n, x.data(), 0.0, y.data()); });
    return 2.0 * static_cast<double>(n) * static_cast<double>(n) / t / 1e6;
}

inline double host_rate_dgemm(std::size_t n) {
    std::vector<double> a(n * n, 0.5), b(n * n, 0.25), c(n * n, 0.0);
    const double t = benchutil::time_per_call(
        [&] { blaslite::dgemm_square(1.0, a.data(), b.data(), 0.0, c.data(), n); });
    return 2.0 * std::pow(static_cast<double>(n), 3.0) / t / 1e6;
}

/// Rate in the figure's unit from the model.
inline double model_rate(const machine::MachineModel& m, const Kernel& k, std::size_t n) {
    const machine::KernelShape shape = k.shape(n);
    return k.unit[1] == 'B' ? machine::predict_mbps(m, shape)
                            : machine::predict_mflops(m, shape);
}

inline void run(const Kernel& k, const std::vector<std::size_t>& sizes) {
    std::printf("%s: speed of %s in %s against array size (paper's axes).\n", k.figure, k.name,
                k.unit);
    std::printf("Series are the calibrated 1999-machine models; host(meas.) is the\n"
                "blaslite kernel measured on this machine for reference.\n\n");
    std::vector<std::string> headers = {k.size_is_matrix_dim ? "n" : "bytes"};
    for (const auto& m : kMachines) headers.push_back(m);
    headers.push_back("host(meas.)");
    benchutil::Table table(headers);
    table.print_header();
    for (std::size_t n : sizes) {
        std::vector<std::string> row;
        row.push_back(std::to_string(k.size_is_matrix_dim ? n : n * sizeof(double)));
        for (const auto& name : kMachines)
            row.push_back(benchutil::fmt(model_rate(machine::by_name(name), k, n)));
        row.push_back(benchutil::fmt(k.host_rate(n)));
        table.print_row(row);
    }
    std::printf("\n");
}

/// Level-1 sweep sizes: 100 bytes to 1 MB, geometric (the paper's x-range).
inline std::vector<std::size_t> level1_sizes() {
    std::vector<std::size_t> s;
    for (std::size_t n = 16; n * sizeof(double) <= (1u << 20); n = n * 2) s.push_back(n);
    return s;
}

} // namespace blas_sweep
