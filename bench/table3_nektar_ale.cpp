/// Table 3: parallel NekTar-ALE flapping-wing run, CPU/wall-clock seconds
/// per time step for P = 16..128 on five systems.  Strong scaling: the dof
/// count is fixed (paper: 4,062,720 dof, 15,870 elements, order 4) so
/// timings fall with P.  Shape to reproduce: myrinet fastest at 16, slightly
/// slower than the SP2-Silver at 64; AP3000 and SP2-Thin2 trail badly.
#include <cmath>
#include <cstdio>
#include <memory>

#include "lab/pricing.hpp"
#include "bench_util.hpp"
#include "mesh/generators.hpp"
#include "nektar/ns_ale.hpp"
#include "partition/partition.hpp"

namespace {

struct AleRun {
    std::vector<perf::StageBreakdown> bds; ///< per rank
    simmpi::CommLog log;                   ///< rank 0
    double hidden_seconds = 0.0;           ///< probe-priced comm hidden behind compute
    std::size_t field_bytes = 0;
    std::size_t solver_bytes = 0;
};

netsim::NetworkModel probe_net() {
    netsim::NetworkModel probe;
    probe.name = "probe";
    probe.latency_us = 10.0;
    probe.bandwidth_mbps = 100.0;
    return probe;
}

AleRun run_ale(int nprocs, const mesh::Mesh& m, const std::vector<int>& part,
               bool overlap_gs, bool trace = false) {
    AleRun out;
    out.bds.resize(static_cast<std::size_t>(nprocs));
    simmpi::World world(nprocs, probe_net());
    const auto reports = world.run([&](simmpi::Comm& c) {
        nektar::AleOptions opts;
        opts.dt = 2e-3;
        opts.viscosity = 0.01;
        opts.cg.tolerance = 1e-8;
        opts.overlap_gs = overlap_gs;
        opts.trace = trace;
        opts.body_velocity = [](double t) { return 0.3 * std::sin(4.0 * t); };
        opts.u_bc = [](double x, double y, double) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? 0.0 : 1.0;
        };
        opts.v_bc = [&opts](double x, double y, double t) {
            const bool body = std::abs(x) <= 0.5 + 1e-6 && std::abs(y) <= 0.5 + 1e-6;
            return body ? opts.body_velocity(t) : 0.0;
        };
        nektar::AleNS2d ns(m, 4, opts, c.size() > 1 ? &c : nullptr,
                           c.size() > 1 ? &part : nullptr);
        ns.set_initial([](double, double) { return 1.0; }, [](double, double) { return 0.0; });
        ns.step(); // bootstrap (first-order start) excluded
        ns.breakdown() = {};
        ns.step();
        ns.step();
        out.bds[static_cast<std::size_t>(c.rank())] = ns.breakdown();
        if (c.rank() == 0) {
            out.field_bytes = ns.disc().quad_size() * sizeof(double);
            // The PCG path streams the elemental matrices every iteration.
            std::size_t mat_bytes = 0;
            for (std::size_t e = 0; e < ns.disc().num_elements(); ++e) {
                const std::size_t nm = ns.disc().ops(e).num_modes();
                mat_bytes += 2 * nm * nm * sizeof(double);
            }
            out.solver_bytes = mat_bytes;
        }
    });
    out.log = reports[0].log;
    for (const auto& [stage, hidden] : reports[0].overlap_log) {
        out.bds[0].add_comm_overlap(static_cast<std::size_t>(stage), hidden);
        out.hidden_seconds += hidden;
    }
    return out;
}

const std::vector<app_model::Platform>& platforms() {
    static const std::vector<app_model::Platform> p = {
        {"AP3000", "AP3000", "AP3000"},
        {"NCSA", "NCSA", "NCSA"},
        {"SP2 Silver", "SP2-Silver", "SP2-Silver internode"},
        {"SP2 Thin2", "SP2-Thin2", "SP2-thin2"},
        {"RoadRunner myr.", "RoadRunner", "RoadRunner myr."},
    };
    return p;
}

} // namespace

int main(int argc, char** argv) {
    const benchutil::Cli cli = benchutil::Cli::parse("table3_nektar_ale", argc, argv);
    std::printf("Table 3: NekTar-ALE flapping-body run, CPU/wall seconds per step.\n");
    std::printf("Strong scaling on a fixed mesh; PCG + gather-scatter communications\n");
    std::printf("(no MPI_Alltoall), exactly the paper's §4.2.2 configuration.\n\n");
    std::printf("Paper, P=16: AP3000 43.2/43.7  NCSA 25.7/25.8  Silver 29.6/29.7  "
                "Thin2 65.5/69.2  RR-myr 25.4/25.4\n\n");

    const auto m = mesh::flapping_body_mesh(3);
    partition::Graph g;
    m.dual_graph(g.xadj, g.adjncy);
    std::printf("Mesh: %s, order 4\n\n", m.summary().c_str());

    std::vector<app_model::Platform> selected;
    for (const auto& pl : platforms())
        if (cli.machine_selected(pl.machine) && cli.net_selected(pl.network))
            selected.push_back(pl);
    if (selected.empty()) {
        std::fprintf(stderr, "table3_nektar_ale: no platform matches the given "
                             "--machine/--net filters\n");
        return 2;
    }

    std::vector<std::string> headers = {"P"};
    for (const auto& pl : selected) headers.push_back(pl.label);
    benchutil::Table table(headers, 16);
    table.print_header();

    perf::RunReport rep = perf::report("table3_nektar_ale");
    perf::StageBreakdown last_bd;
    std::size_t last_field_bytes = 0, last_solver_bytes = 0;
    bool traced = false; // --trace records the first (smallest-P) run only
    for (int nprocs : cli.rank_sweep({4, 8, 16, 32})) {
        const auto part = partition::partition_graph(g, nprocs);
        const bool trace_this = cli.trace && !traced;
        const AleRun run = run_ale(nprocs, m, part, /*overlap_gs=*/false, trace_this);
        // One clean traced sweep: the comm-layer spans are gated only by the
        // global tracer, so stop recording after the dedicated run.
        if (trace_this) obs::tracer().disable();
        traced = true;
        last_bd = run.bds[0];
        last_field_bytes = run.field_bytes;
        last_solver_bytes = run.solver_bytes;
        const auto shapes = app_model::solver_shapes(run.field_bytes, run.solver_bytes);
        std::vector<std::string> row = {std::to_string(nprocs)};
        for (const auto& pl : selected) {
            const auto& mm = machine::by_name(pl.machine);
            const auto& net = netsim::by_name(pl.network);
            // CPU: mean across ranks; wall: slowest rank + communication.
            double mean_cpu = 0.0, max_cpu = 0.0;
            for (const auto& bd : run.bds) {
                const auto comp = app_model::compute_stage_seconds(bd, mm, shapes);
                double c = 0.0;
                for (std::size_t s = 1; s <= perf::kNumStages; ++s) c += comp[s];
                c /= bd.steps;
                mean_cpu += c;
                max_cpu = std::max(max_cpu, c);
            }
            mean_cpu /= static_cast<double>(run.bds.size());
            const double comm =
                simmpi::price_log(run.log, net, nprocs) / run.bds[0].steps;
            const double wall = max_cpu + comm;
            const double cpu = mean_cpu + comm * net.cpu_poll_fraction;
            row.push_back(benchutil::fmt(cpu, "%.2f") + "/" + benchutil::fmt(wall, "%.2f"));
            perf::Case kase;
            kase.labels["platform"] = pl.label;
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["cpu_seconds_per_step"] = cpu;
            kase.values["wall_seconds_per_step"] = wall;
            kase.values["comm_seconds_per_step"] = comm;
            rep.cases.push_back(std::move(kase));
        }
        table.print_row(row);
    }
    std::printf("\n(reduced mesh; compare the scaling trend and platform ordering with\n"
                "the paper's Table 3, where timings drop with P at fixed dof count)\n");

    // GPU-era projection of the last sweep's rank-0 step (see table2 for the
    // column semantics); the ALE step's PCG-heavy stages are latency-bound,
    // exactly where the device roofline gains the least.
    std::printf("\nGPU-era projection (rank-0 seconds/step on accelerator rooflines;\n"
                "device / +2 field crossings per step / +2 crossings per stage)\n\n");
    {
        const auto shapes = app_model::solver_shapes(last_field_bytes, last_solver_bytes);
        benchutil::Table at({"accelerator", "device", "resident", "staged"}, 14);
        at.print_header();
        for (const auto& acc : machine::accelerator_roster()) {
            const auto proj =
                app_model::project_accelerated(last_bd, acc, shapes, last_field_bytes);
            at.print_row({acc.name, benchutil::fmt(proj.device, "%.3g"),
                          benchutil::fmt(proj.resident, "%.3g"),
                          benchutil::fmt(proj.staged, "%.3g")});
            perf::Case kase;
            kase.labels["accelerator"] = acc.name;
            kase.values["device_seconds_per_step"] = proj.device;
            kase.values["resident_seconds_per_step"] = proj.resident;
            kase.values["staged_seconds_per_step"] = proj.staged;
            rep.cases.push_back(std::move(kase));
        }
    }

    // Overlap ablation: the gather-scatter pairwise stage over posted
    // irecvs (per-neighbour packing overlapped with transfers in flight)
    // against the blocking sendrecv loop.  Ethernet included here because a
    // kernel-TCP stack (poll < 1) is exactly where overlap pays off.
    std::printf("\nNonblocking gather-scatter exchange vs blocking sendrecv\n");
    std::printf("(CPU/wall s per step; 'recov' = wall seconds recovered per step)\n\n");
    const std::vector<app_model::Platform> ablation_plats = {
        {"NCSA", "NCSA", "NCSA"},
        {"RoadRunner eth.", "RoadRunner", "RoadRunner eth."},
        {"RoadRunner myr.", "RoadRunner", "RoadRunner myr."},
    };
    for (int nprocs : {8, 16}) {
        const auto part = partition::partition_graph(g, nprocs);
        const AleRun blk = run_ale(nprocs, m, part, /*overlap_gs=*/false);
        const AleRun ovl = run_ale(nprocs, m, part, /*overlap_gs=*/true);
        const auto shapes = app_model::solver_shapes(ovl.field_bytes, ovl.solver_bytes);
        const double rho = app_model::overlap_efficiency(
            ovl.hidden_seconds,
            simmpi::price_log_split(ovl.log, probe_net(), nprocs).overlapped);
        std::printf("P = %d  (hidden fraction of overlapped comm: %.0f%%)\n", nprocs,
                    100.0 * rho);
        benchutil::Table table2({"network", "blocking", "overlapped", "recov"}, 16);
        table2.print_header();
        for (const auto& pl : ablation_plats) {
            const auto& mm = machine::by_name(pl.machine);
            const auto& net = netsim::by_name(pl.network);
            double mean_cpu = 0.0, max_cpu = 0.0;
            for (const auto& bd : ovl.bds) {
                const auto comp = app_model::compute_stage_seconds(bd, mm, shapes);
                double c = 0.0;
                for (std::size_t s = 1; s <= perf::kNumStages; ++s) c += comp[s];
                c /= bd.steps;
                mean_cpu += c;
                max_cpu = std::max(max_cpu, c);
            }
            mean_cpu /= static_cast<double>(ovl.bds.size());
            const double comm_blk =
                simmpi::price_log(blk.log, net, nprocs) / blk.bds[0].steps;
            const auto split = simmpi::price_log_split(ovl.log, net, nprocs);
            const double comm_ovl = split.total() / ovl.bds[0].steps;
            const double recov = app_model::recovered_seconds(
                rho, split.overlapped / ovl.bds[0].steps, net.cpu_poll_fraction);
            table2.print_row(
                {pl.label,
                 benchutil::fmt(mean_cpu + comm_blk * net.cpu_poll_fraction, "%.2f") + "/" +
                     benchutil::fmt(max_cpu + comm_blk, "%.2f"),
                 benchutil::fmt(mean_cpu + comm_ovl * net.cpu_poll_fraction, "%.2f") + "/" +
                     benchutil::fmt(max_cpu + comm_ovl - recov, "%.2f"),
                 benchutil::fmt(recov, "%.2f")});
            perf::Case kase;
            kase.labels["platform"] = pl.label;
            kase.labels["ablation"] = "overlap_gs";
            kase.values["nprocs"] = static_cast<double>(nprocs);
            kase.values["hidden_fraction"] = rho;
            kase.values["blocking_wall_seconds_per_step"] = max_cpu + comm_blk;
            kase.values["overlapped_wall_seconds_per_step"] = max_cpu + comm_ovl - recov;
            kase.values["recovered_seconds_per_step"] = recov;
            rep.cases.push_back(std::move(kase));
        }
        std::printf("\n");
    }
    // Stage rows come from rank 0 of the last Table-3 sweep run.
    perf::RunReport out = perf::report("table3_nektar_ale", &last_bd);
    out.cases = std::move(rep.cases);
    cli.finish(std::move(out));
    return 0;
}
